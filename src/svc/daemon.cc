#include "src/svc/daemon.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/core/report.h"
#include "src/ingest/ingest.h"
#include "src/obs/metrics.h"
#include "src/svc/jsonv.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace aitia {
namespace svc {

// --- metrics ----------------------------------------------------------------

struct Daemon::Metrics {
  obs::Counter* requests;
  obs::Counter* accepted;
  obs::Counter* completed;
  obs::Counter* degraded;
  obs::Counter* rejected_overloaded;
  obs::Counter* rejected_draining;
  obs::Counter* errors_invalid;
  obs::Counter* errors_not_found;
  obs::Counter* errors_internal;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* duplicate_responses;  // must stay 0: exactly-once violations
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_peak;
  obs::Gauge* in_flight;
  obs::Gauge* draining;
  obs::Histogram* request_ms;

  static const Metrics& Get() {
    static const Metrics* const m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* sm = new Metrics();
      sm->requests = reg.GetCounter("svc.requests");
      sm->accepted = reg.GetCounter("svc.accepted");
      sm->completed = reg.GetCounter("svc.completed");
      sm->degraded = reg.GetCounter("svc.degraded");
      sm->rejected_overloaded = reg.GetCounter("svc.rejected_overloaded");
      sm->rejected_draining = reg.GetCounter("svc.rejected_draining");
      sm->errors_invalid = reg.GetCounter("svc.errors_invalid");
      sm->errors_not_found = reg.GetCounter("svc.errors_not_found");
      sm->errors_internal = reg.GetCounter("svc.errors_internal");
      sm->cache_hits = reg.GetCounter("svc.cache_hits");
      sm->cache_misses = reg.GetCounter("svc.cache_misses");
      sm->duplicate_responses = reg.GetCounter("svc.duplicate_responses");
      sm->queue_depth = reg.GetGauge("svc.queue_depth");
      sm->queue_depth_peak = reg.GetGauge("svc.queue_depth_peak");
      sm->in_flight = reg.GetGauge("svc.in_flight");
      sm->draining = reg.GetGauge("svc.draining");
      sm->request_ms =
          reg.GetHistogram("svc.request_ms", {1, 5, 10, 50, 100, 500, 1000, 5000, 30000});
      return sm;
    }();
    return *m;
  }
};

// --- single-shot responder --------------------------------------------------

// Wraps the transport callback so a request can answer at most once, no
// matter how many code paths race to it. A second send is dropped and
// counted — the chaos driver asserts that counter stays 0.
class Daemon::OnceResponder {
 public:
  explicit OnceResponder(Responder fn) : fn_(std::move(fn)) {}

  void Send(std::string response) {
    if (sent_.exchange(true, std::memory_order_acq_rel)) {
      Metrics::Get().duplicate_responses->Increment();
      return;
    }
    fn_(std::move(response));
  }

 private:
  std::atomic<bool> sent_{false};
  Responder fn_;
};

// --- response builders ------------------------------------------------------

namespace {

std::string ErrorResponse(const std::string& id, const std::string& status,
                          const std::string& error, const std::string& extra = "") {
  return StrFormat("{\"id\":\"%s\",\"status\":\"%s\",\"error\":\"%s\"%s}",
                   JsonEscape(id).c_str(), status.c_str(), JsonEscape(error).c_str(),
                   extra.c_str());
}

std::string ResultResponse(const std::string& id, const std::string& scenario_id,
                           const std::string& status, const char* cache, double elapsed_ms,
                           const std::string& report_json) {
  return StrFormat(
      "{\"id\":\"%s\",\"verb\":\"diagnose\",\"scenario\":\"%s\",\"status\":\"%s\","
      "\"cache\":\"%s\",\"elapsed_ms\":%.3f,\"report\":%s}",
      JsonEscape(id).c_str(), JsonEscape(scenario_id).c_str(), status.c_str(), cache,
      elapsed_ms, report_json.c_str());
}

// Maps a finished pipeline report to the protocol's terminal status word.
// "not_reproduced" is reserved for *clean* non-reproduction: a search that
// lost runs to faults, deadlines, or cancellation reads as "degraded" even
// when it found nothing, so callers never mistake a cut-short search for a
// verdict.
const char* StatusWord(const AitiaReport& report) {
  if (report.degraded || !report.status.ok()) {
    return "degraded";
  }
  return report.diagnosed ? "ok" : "not_reproduced";
}

}  // namespace

// --- request payload --------------------------------------------------------

struct DiagnoseJob {
  BugScenario scenario;
  std::string id;
  uint64_t fingerprint = 0;
  size_t jobs = 1;
  int64_t deadline_ms = 0;
  int64_t hold_ms = 0;
  bool cacheable = true;
  Stopwatch admitted;  // started at admission: elapsed_ms includes queueing
};

// --- daemon -----------------------------------------------------------------

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  WorkQueue::Options qo;
  qo.workers = options_.workers == 0 ? 1 : options_.workers;
  qo.shards = options_.queue_shards;
  qo.shard_capacity = options_.shard_capacity;
  queue_ = std::make_unique<WorkQueue>(qo);
  Metrics::Get().draining->Set(0);
}

Daemon::~Daemon() { Drain(); }

void Daemon::Submit(std::string line, Responder respond) {
  auto once = std::make_shared<OnceResponder>(std::move(respond));
  // The request boundary: nothing a single request does — however malformed
  // or unlucky — may take the daemon down or swallow the response.
  try {
    SubmitImpl(std::move(line), once);
  } catch (const std::exception& e) {
    Metrics::Get().errors_internal->Increment();
    once->Send(ErrorResponse("", "internal", StrFormat("request failed: %s", e.what())));
  } catch (...) {
    Metrics::Get().errors_internal->Increment();
    once->Send(ErrorResponse("", "internal", "request failed: unknown exception"));
  }
}

std::string Daemon::HandleLine(const std::string& line) {
  // Blocking wrapper over the async path; rejections and cache hits respond
  // inline, diagnoses from a worker thread.
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    std::string response;
    bool done = false;
  };
  auto sync = std::make_shared<Sync>();
  Submit(line, [sync](std::string response) {
    std::lock_guard<std::mutex> lock(sync->mu);
    sync->response = std::move(response);
    sync->done = true;
    sync->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->done; });
  return sync->response;
}

void Daemon::SubmitImpl(std::string line, const std::shared_ptr<OnceResponder>& respond) {
  const Metrics& m = Metrics::Get();
  m.requests->Increment();

  if (line.size() > options_.max_request_bytes) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse(
        "", "invalid_argument",
        StrFormat("request of %zu bytes exceeds limit %zu", line.size(),
                  options_.max_request_bytes)));
    return;
  }
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse("", "invalid_argument", parsed.status().ToString()));
    return;
  }
  const JsonValue& doc = *parsed;
  if (!doc.is_object()) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse("", "invalid_argument", "request must be a JSON object"));
    return;
  }

  std::string id;
  if (const JsonValue* v = doc.Find("id"); v != nullptr) {
    id = v->is_string() ? v->AsString()
                        : StrFormat("%lld", static_cast<long long>(v->AsInt()));
  } else {
    id = StrFormat("auto-%llu", static_cast<unsigned long long>(
                                    request_seq_.fetch_add(1, std::memory_order_relaxed)));
  }

  const JsonValue* verb_v = doc.Find("verb");
  const std::string verb = verb_v != nullptr && verb_v->is_string() ? verb_v->AsString() : "";
  if (verb == "ping") {
    respond->Send(
        StrFormat("{\"id\":\"%s\",\"verb\":\"ping\",\"status\":\"ok\"}", JsonEscape(id).c_str()));
    return;
  }
  if (verb == "metrics") {
    respond->Send(StrFormat("{\"id\":\"%s\",\"verb\":\"metrics\",\"status\":\"ok\",\"metrics\":%s}",
                            JsonEscape(id).c_str(), MetricsJson().c_str()));
    return;
  }
  if (verb == "shutdown") {
    const bool first = !shutdown_requested_.exchange(true, std::memory_order_acq_rel);
    respond->Send(StrFormat(
        "{\"id\":\"%s\",\"verb\":\"shutdown\",\"status\":\"ok\",\"draining\":true}",
        JsonEscape(id).c_str()));
    if (first && options_.on_shutdown_request) {
      options_.on_shutdown_request();
    }
    return;
  }
  if (verb == "diagnose") {
    HandleDiagnose(doc, id, respond);
    return;
  }
  m.errors_invalid->Increment();
  respond->Send(ErrorResponse(id, "invalid_argument",
                              verb.empty() ? "missing \"verb\""
                                           : StrFormat("unknown verb '%s'", verb.c_str())));
}

void Daemon::HandleDiagnose(const JsonValue& doc, const std::string& id,
                            const std::shared_ptr<OnceResponder>& respond) {
  const Metrics& m = Metrics::Get();
  if (draining()) {
    m.rejected_draining->Increment();
    respond->Send(ErrorResponse(id, "draining", "daemon is draining; not admitting requests"));
    return;
  }

  const JsonValue* ait = doc.Find("ait");
  const JsonValue* scen = doc.Find("scenario");
  if ((ait != nullptr) == (scen != nullptr)) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse(
        id, "invalid_argument", "diagnose needs exactly one of \"ait\" or \"scenario\""));
    return;
  }

  auto job = std::make_shared<DiagnoseJob>();
  job->id = id;
  if (ait != nullptr) {
    if (!ait->is_string()) {
      m.errors_invalid->Increment();
      respond->Send(ErrorResponse(id, "invalid_argument", "\"ait\" must be a string"));
      return;
    }
    // Parse + assemble on the admission thread: a malformed trace is an
    // input error the client hears about immediately, and it never occupies
    // a queue slot or a worker.
    StatusOr<BugScenario> assembled = ScenarioFromAitText(ait->AsString(), "<request>");
    if (!assembled.ok()) {
      m.errors_invalid->Increment();
      respond->Send(ErrorResponse(id, "invalid_argument", assembled.status().ToString()));
      return;
    }
    job->scenario = *std::move(assembled);
  } else {
    if (!scen->is_string()) {
      m.errors_invalid->Increment();
      respond->Send(ErrorResponse(id, "invalid_argument", "\"scenario\" must be a string"));
      return;
    }
    const ScenarioEntry* entry = FindScenario(scen->AsString());
    if (entry == nullptr) {
      m.errors_not_found->Increment();
      respond->Send(ErrorResponse(
          id, "not_found",
          StrFormat("unknown scenario id '%s'", scen->AsString().c_str())));
      return;
    }
    job->scenario = entry->make();
  }

  auto clamp = [](int64_t v, int64_t lo, int64_t hi) { return v < lo ? lo : (v > hi ? hi : v); };
  job->jobs = static_cast<size_t>(
      clamp(doc.Find("jobs") != nullptr ? doc.Find("jobs")->AsInt() : static_cast<int64_t>(options_.jobs),
            1, 64));
  job->deadline_ms = clamp(
      doc.Find("deadline_ms") != nullptr ? doc.Find("deadline_ms")->AsInt() : options_.default_deadline_ms,
      1, options_.max_deadline_ms);
  job->hold_ms =
      clamp(doc.Find("hold_ms") != nullptr ? doc.Find("hold_ms")->AsInt() : 0, 0, options_.max_hold_ms);
  const bool no_cache = doc.Find("no_cache") != nullptr && doc.Find("no_cache")->AsBool();
  // Chaos runs bypass the cache in both directions: a fault-shaped result
  // must neither be served from nor stored into it.
  job->cacheable = !no_cache && !options_.faults.enabled();
  job->fingerprint = ScenarioFingerprint(job->scenario);

  if (job->cacheable) {
    if (std::optional<CachedResult> hit = cache_.Get(job->fingerprint)) {
      m.cache_hits->Increment();
      respond->Send(ResultResponse(id, job->scenario.id, hit->status_word, "hit",
                                   job->admitted.ElapsedMillis(), hit->report_json));
      return;
    }
    m.cache_misses->Increment();
  }

  const WorkQueue::Push push = queue_->TryPush(job->fingerprint, [this, job, respond] {
    try {
      RunDiagnose(*job, respond);
    } catch (const std::exception& e) {
      Metrics::Get().errors_internal->Increment();
      respond->Send(
          ErrorResponse(job->id, "internal", StrFormat("diagnosis failed: %s", e.what())));
    } catch (...) {
      Metrics::Get().errors_internal->Increment();
      respond->Send(ErrorResponse(job->id, "internal", "diagnosis failed: unknown exception"));
    }
  });
  switch (push) {
    case WorkQueue::Push::kAccepted: {
      m.accepted->Increment();
      const int64_t depth = static_cast<int64_t>(queue_->depth());
      m.queue_depth->Set(depth);
      m.queue_depth_peak->SetMax(depth);
      return;
    }
    case WorkQueue::Push::kOverloaded:
      m.rejected_overloaded->Increment();
      respond->Send(ErrorResponse(
          id, "overloaded", "admission queue full; retry later",
          StrFormat(",\"retry_after_ms\":%lld",
                    static_cast<long long>(options_.retry_after_ms))));
      return;
    case WorkQueue::Push::kShutdown:
      m.rejected_draining->Increment();
      respond->Send(ErrorResponse(id, "draining", "daemon is draining; not admitting requests"));
      return;
  }
}

void Daemon::RunDiagnose(const DiagnoseJob& job, const std::shared_ptr<OnceResponder>& respond) {
  const Metrics& m = Metrics::Get();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  m.in_flight->Add(1);
  m.queue_depth->Set(static_cast<int64_t>(queue_->depth()));

  // Load/chaos hook: an artificial pre-diagnosis delay, so drivers can pin a
  // worker for a known time. Sliced so a hard drain cuts it short.
  for (int64_t held = 0; held < job.hold_ms && !drain_hard_.load(std::memory_order_acquire);
       held += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const double deadline_seconds = static_cast<double>(job.deadline_ms) / 1e3;
  auto run_watch = std::make_shared<Stopwatch>();
  AitiaOptions options;
  options.set_jobs(job.jobs);
  options.set_deadline(deadline_seconds);
  options.set_replay_cache(options_.replay_cache);
  options.causality.stages = options_.triage_stages;
  // The cancel probe is the hard bound: it fires when the request exceeds
  // its whole-request budget or when the drain grace expired — either way
  // the supervised stages unwind with kCancelled and the report degrades.
  options.set_cancel([this, run_watch, deadline_seconds] {
    return drain_hard_.load(std::memory_order_acquire) ||
           run_watch->ElapsedSeconds() > deadline_seconds;
  });
  if (options_.faults.enabled()) {
    FaultPlan plan = options_.faults;
    // Vary the fault stream per scenario (deterministically) so a corpus
    // replay does not fail the same way 22 times.
    plan.seed ^= job.fingerprint;
    options.lifs.supervisor.faults = plan;
    options.lifs.supervisor.max_attempts = options_.fault_max_attempts;
    options.causality.supervisor.faults = plan;
    options.causality.supervisor.max_attempts = options_.fault_max_attempts;
  }

  AitiaReport report = DiagnoseScenario(job.scenario, options);
  const std::string report_json = ReportToJson(report, *job.scenario.image);
  const char* status_word = StatusWord(report);

  m.completed->Increment();
  if (std::string(status_word) == "degraded") {
    m.degraded->Increment();
  } else if (job.cacheable) {
    // Only clean outcomes are cacheable; see cache.h.
    cache_.Put(job.fingerprint, {status_word, report_json});
  }
  const double elapsed_ms = job.admitted.ElapsedMillis();
  m.request_ms->Record(static_cast<int64_t>(elapsed_ms));
  respond->Send(
      ResultResponse(job.id, job.scenario.id, status_word, "miss", elapsed_ms, report_json));

  m.in_flight->Add(-1);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Daemon::BeginDrain() {
  if (!draining_.exchange(true, std::memory_order_acq_rel)) {
    Metrics::Get().draining->Set(1);
    AITIA_LOG(kInfo) << "aitiad: drain started (queue=" << queue_->depth()
                     << " in_flight=" << in_flight() << ")";
  }
}

void Daemon::Drain() {
  BeginDrain();
  if (drained_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  // Let queued + in-flight work finish under its own deadlines for up to the
  // grace period, then arm the hard cancel probe: supervised runs return
  // kCancelled within a simulator step and the pipeline degrades out.
  Stopwatch grace;
  while ((queue_->depth() > 0 || in_flight() > 0) &&
         grace.ElapsedMillis() < static_cast<double>(options_.drain_grace_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (queue_->depth() > 0 || in_flight() > 0) {
    AITIA_LOG(kWarn) << "aitiad: drain grace expired; cancelling in-flight work";
    drain_hard_.store(true, std::memory_order_release);
  }
  // Authoritative completion barrier: every accepted task has fully run (and
  // responded) once this returns.
  queue_->Drain();
  Metrics::Get().queue_depth->Set(0);
  AITIA_LOG(kInfo) << "aitiad: drain complete";
}

std::string Daemon::MetricsJson() {
  return obs::MetricsRegistry::Global().Snapshot().ToJson();
}

}  // namespace svc
}  // namespace aitia
