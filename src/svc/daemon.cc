#include "src/svc/daemon.h"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "src/bugs/diagnose.h"
#include "src/bugs/registry.h"
#include "src/core/aitia.h"
#include "src/core/report.h"
#include "src/ingest/ingest.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/svc/jsonv.h"
#include "src/tools/sarif.h"
#include "src/util/log.h"
#include "src/util/stopwatch.h"
#include "src/util/strings.h"

namespace aitia {
namespace svc {

// --- metrics ----------------------------------------------------------------

struct Daemon::Metrics {
  obs::Counter* requests;
  obs::Counter* accepted;
  obs::Counter* completed;
  obs::Counter* degraded;
  obs::Counter* rejected_overloaded;
  obs::Counter* rejected_draining;
  obs::Counter* errors_invalid;
  obs::Counter* errors_not_found;
  obs::Counter* errors_internal;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* duplicate_responses;  // must stay 0: exactly-once violations
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_peak;
  obs::Gauge* in_flight;
  obs::Gauge* draining;
  obs::Histogram* request_ms;

  static const Metrics& Get() {
    static const Metrics* const m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* sm = new Metrics();
      sm->requests = reg.GetCounter("svc.requests");
      sm->accepted = reg.GetCounter("svc.accepted");
      sm->completed = reg.GetCounter("svc.completed");
      sm->degraded = reg.GetCounter("svc.degraded");
      sm->rejected_overloaded = reg.GetCounter("svc.rejected_overloaded");
      sm->rejected_draining = reg.GetCounter("svc.rejected_draining");
      sm->errors_invalid = reg.GetCounter("svc.errors_invalid");
      sm->errors_not_found = reg.GetCounter("svc.errors_not_found");
      sm->errors_internal = reg.GetCounter("svc.errors_internal");
      sm->cache_hits = reg.GetCounter("svc.cache_hits");
      sm->cache_misses = reg.GetCounter("svc.cache_misses");
      sm->duplicate_responses = reg.GetCounter("svc.duplicate_responses");
      sm->queue_depth = reg.GetGauge("svc.queue_depth");
      sm->queue_depth_peak = reg.GetGauge("svc.queue_depth_peak");
      sm->in_flight = reg.GetGauge("svc.in_flight");
      sm->draining = reg.GetGauge("svc.draining");
      sm->request_ms =
          reg.GetHistogram("svc.request_ms", {1, 5, 10, 50, 100, 500, 1000, 5000, 30000});
      return sm;
    }();
    return *m;
  }
};

// --- single-shot responder --------------------------------------------------

// Wraps the transport callback so a request can answer at most once, no
// matter how many code paths race to it. A second send is dropped and
// counted — the chaos driver asserts that counter stays 0.
class Daemon::OnceResponder {
 public:
  explicit OnceResponder(Responder fn) : fn_(std::move(fn)) {}

  void Send(std::string response) {
    if (sent_.exchange(true, std::memory_order_acq_rel)) {
      Metrics::Get().duplicate_responses->Increment();
      return;
    }
    fn_(std::move(response));
  }

 private:
  std::atomic<bool> sent_{false};
  Responder fn_;
};

// --- streaming relay --------------------------------------------------------

// Pumps one streamed request's scope-filtered event-bus frames to its
// transport sink. Constructed before the first lifecycle event is published
// (the subscription exists first, so nothing is missed) and finished —
// close, drain, join — strictly before the terminal response goes out,
// which is what makes "every frame precedes the terminal" structural. A
// slow or dead client only ever loses frames (bounded per-subscription
// queue, oldest dropped and counted); it never back-pressures the worker.
class StreamRelay {
 public:
  StreamRelay(std::string id, Daemon::Responder sink)
      : scope_(obs::EventBus::NextScope()),
        id_(std::move(id)),
        sink_(std::move(sink)),
        sub_(obs::EventBus::Global().Subscribe(scope_)) {
    pump_ = std::thread([this] { Pump(); });
  }

  ~StreamRelay() { Finish(); }

  StreamRelay(const StreamRelay&) = delete;
  StreamRelay& operator=(const StreamRelay&) = delete;

  uint64_t scope() const { return scope_; }

  // Publishes a daemon-side lifecycle event into this request's scope. Going
  // through the bus (instead of writing to the sink directly) keeps daemon
  // frames ordered with pipeline frames: everything funnels through the one
  // subscription queue.
  void Publish(obs::DiagPhase phase, const char* name, std::string detail = std::string(),
               std::vector<std::pair<std::string, int64_t>> counters = {}) {
    obs::PublishDiagEvent(scope_, phase, name, std::move(detail), std::move(counters));
  }

  // Closes the subscription, drains every buffered frame to the sink, joins
  // the pump. Idempotent; must complete before the terminal Send.
  void Finish() {
    sub_->Close();
    if (pump_.joinable()) {
      pump_.join();
    }
    static obs::Counter* const dropped =
        obs::MetricsRegistry::Global().GetCounter("svc.stream_frames_dropped");
    const int64_t d = sub_->dropped();
    if (d > reported_dropped_) {
      dropped->Add(d - reported_dropped_);
      reported_dropped_ = d;
    }
  }

 private:
  void Pump() {
    static obs::Counter* const frames =
        obs::MetricsRegistry::Global().GetCounter("svc.stream_frames");
    static obs::Counter* const sink_errors =
        obs::MetricsRegistry::Global().GetCounter("svc.stream_sink_errors");
    for (;;) {
      std::optional<obs::DiagEvent> event = sub_->Next(/*timeout_ms=*/200);
      if (event.has_value()) {
        if (!sink_dead_) {
          try {
            sink_(StrFormat("{\"id\":\"%s\",\"event\":%s}", JsonEscape(id_).c_str(),
                            obs::DiagEventToJson(*event).c_str()));
            frames->Increment();
          } catch (...) {
            // The client went away mid-stream (broken pipe surfaced as an
            // exception by the transport). The stream degrades to silence;
            // the diagnosis and its terminal response are unaffected, and
            // remaining events drain-discard so Finish() still completes.
            sink_dead_ = true;
            sink_errors->Increment();
          }
        }
        continue;
      }
      if (sub_->closed()) {
        return;  // closed and fully drained
      }
    }
  }

  const uint64_t scope_;
  const std::string id_;
  Daemon::Responder sink_;
  std::shared_ptr<obs::EventSubscription> sub_;
  std::thread pump_;
  bool sink_dead_ = false;  // pump-thread only: stop writing after one failure
  int64_t reported_dropped_ = 0;
};

// --- response builders ------------------------------------------------------

namespace {

std::string ErrorResponse(const std::string& id, const std::string& status,
                          const std::string& error, const std::string& extra = "") {
  return StrFormat("{\"id\":\"%s\",\"status\":\"%s\",\"error\":\"%s\"%s}",
                   JsonEscape(id).c_str(), status.c_str(), JsonEscape(error).c_str(),
                   extra.c_str());
}

std::string ResultResponse(const std::string& id, const std::string& scenario_id,
                           const std::string& status, const char* cache, double elapsed_ms,
                           const std::string& report_json, const std::string& extra = "") {
  return StrFormat(
      "{\"id\":\"%s\",\"verb\":\"diagnose\",\"scenario\":\"%s\",\"status\":\"%s\","
      "\"cache\":\"%s\",\"elapsed_ms\":%.3f,\"report\":%s%s}",
      JsonEscape(id).c_str(), JsonEscape(scenario_id).c_str(), status.c_str(), cache,
      elapsed_ms, report_json.c_str(), extra.c_str());
}

// Maps a finished pipeline report to the protocol's terminal status word.
// "not_reproduced" is reserved for *clean* non-reproduction: a search that
// lost runs to faults, deadlines, or cancellation reads as "degraded" even
// when it found nothing, so callers never mistake a cut-short search for a
// verdict.
const char* StatusWord(const AitiaReport& report) {
  if (report.degraded || !report.status.ok()) {
    return "degraded";
  }
  return report.diagnosed ? "ok" : "not_reproduced";
}

}  // namespace

// --- request payload --------------------------------------------------------

struct DiagnoseJob {
  BugScenario scenario;
  std::string id;
  uint64_t fingerprint = 0;
  size_t jobs = 1;
  int64_t deadline_ms = 0;
  int64_t hold_ms = 0;
  bool cacheable = true;
  bool sarif = false;  // attach a SARIF log to the terminal response
  // Non-null for "stream": true requests with a transport frame sink.
  std::shared_ptr<StreamRelay> relay;
  Stopwatch admitted;  // started at admission: elapsed_ms includes queueing
};

// --- daemon -----------------------------------------------------------------

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity) {
  WorkQueue::Options qo;
  qo.workers = options_.workers == 0 ? 1 : options_.workers;
  qo.shards = options_.queue_shards;
  qo.shard_capacity = options_.shard_capacity;
  queue_ = std::make_unique<WorkQueue>(qo);
  Metrics::Get().draining->Set(0);
}

Daemon::~Daemon() { Drain(); }

void Daemon::Submit(std::string line, Responder respond, Responder stream) {
  auto once = std::make_shared<OnceResponder>(std::move(respond));
  // The request boundary: nothing a single request does — however malformed
  // or unlucky — may take the daemon down or swallow the response.
  try {
    SubmitImpl(std::move(line), once, stream);
  } catch (const std::exception& e) {
    Metrics::Get().errors_internal->Increment();
    once->Send(ErrorResponse("", "internal", StrFormat("request failed: %s", e.what())));
  } catch (...) {
    Metrics::Get().errors_internal->Increment();
    once->Send(ErrorResponse("", "internal", "request failed: unknown exception"));
  }
}

std::string Daemon::HandleLine(const std::string& line, const Responder& stream) {
  // Blocking wrapper over the async path; rejections and cache hits respond
  // inline, diagnoses from a worker thread. Stream frames are delivered (to
  // `stream`, from the relay thread) before the terminal is produced, so by
  // the time this returns the caller has seen every frame.
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    std::string response;
    bool done = false;
  };
  auto sync = std::make_shared<Sync>();
  Submit(
      line,
      [sync](std::string response) {
        std::lock_guard<std::mutex> lock(sync->mu);
        sync->response = std::move(response);
        sync->done = true;
        sync->cv.notify_all();
      },
      stream);
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->done; });
  return sync->response;
}

void Daemon::SubmitImpl(std::string line, const std::shared_ptr<OnceResponder>& respond,
                        const Responder& stream) {
  const Metrics& m = Metrics::Get();
  m.requests->Increment();

  if (line.size() > options_.max_request_bytes) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse(
        "", "invalid_argument",
        StrFormat("request of %zu bytes exceeds limit %zu", line.size(),
                  options_.max_request_bytes)));
    return;
  }
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse("", "invalid_argument", parsed.status().ToString()));
    return;
  }
  const JsonValue& doc = *parsed;
  if (!doc.is_object()) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse("", "invalid_argument", "request must be a JSON object"));
    return;
  }

  std::string id;
  if (const JsonValue* v = doc.Find("id"); v != nullptr) {
    id = v->is_string() ? v->AsString()
                        : StrFormat("%lld", static_cast<long long>(v->AsInt()));
  } else {
    id = StrFormat("auto-%llu", static_cast<unsigned long long>(
                                    request_seq_.fetch_add(1, std::memory_order_relaxed)));
  }

  const JsonValue* verb_v = doc.Find("verb");
  const std::string verb = verb_v != nullptr && verb_v->is_string() ? verb_v->AsString() : "";
  if (verb == "ping") {
    respond->Send(
        StrFormat("{\"id\":\"%s\",\"verb\":\"ping\",\"status\":\"ok\"}", JsonEscape(id).c_str()));
    return;
  }
  if (verb == "metrics") {
    respond->Send(StrFormat("{\"id\":\"%s\",\"verb\":\"metrics\",\"status\":\"ok\",\"metrics\":%s}",
                            JsonEscape(id).c_str(), MetricsJson().c_str()));
    return;
  }
  if (verb == "shutdown") {
    const bool first = !shutdown_requested_.exchange(true, std::memory_order_acq_rel);
    respond->Send(StrFormat(
        "{\"id\":\"%s\",\"verb\":\"shutdown\",\"status\":\"ok\",\"draining\":true}",
        JsonEscape(id).c_str()));
    if (first && options_.on_shutdown_request) {
      options_.on_shutdown_request();
    }
    return;
  }
  if (verb == "diagnose") {
    HandleDiagnose(doc, id, respond, stream);
    return;
  }
  m.errors_invalid->Increment();
  respond->Send(ErrorResponse(id, "invalid_argument",
                              verb.empty() ? "missing \"verb\""
                                           : StrFormat("unknown verb '%s'", verb.c_str())));
}

void Daemon::HandleDiagnose(const JsonValue& doc, const std::string& id,
                            const std::shared_ptr<OnceResponder>& respond,
                            const Responder& stream) {
  const Metrics& m = Metrics::Get();
  if (draining()) {
    m.rejected_draining->Increment();
    respond->Send(ErrorResponse(id, "draining", "daemon is draining; not admitting requests"));
    return;
  }

  const JsonValue* ait = doc.Find("ait");
  const JsonValue* scen = doc.Find("scenario");
  if ((ait != nullptr) == (scen != nullptr)) {
    m.errors_invalid->Increment();
    respond->Send(ErrorResponse(
        id, "invalid_argument", "diagnose needs exactly one of \"ait\" or \"scenario\""));
    return;
  }

  auto job = std::make_shared<DiagnoseJob>();
  job->id = id;
  if (ait != nullptr) {
    if (!ait->is_string()) {
      m.errors_invalid->Increment();
      respond->Send(ErrorResponse(id, "invalid_argument", "\"ait\" must be a string"));
      return;
    }
    // Parse + assemble on the admission thread: a malformed trace is an
    // input error the client hears about immediately, and it never occupies
    // a queue slot or a worker.
    StatusOr<BugScenario> assembled = ScenarioFromAitText(ait->AsString(), "<request>");
    if (!assembled.ok()) {
      m.errors_invalid->Increment();
      respond->Send(ErrorResponse(id, "invalid_argument", assembled.status().ToString()));
      return;
    }
    job->scenario = *std::move(assembled);
  } else {
    if (!scen->is_string()) {
      m.errors_invalid->Increment();
      respond->Send(ErrorResponse(id, "invalid_argument", "\"scenario\" must be a string"));
      return;
    }
    const ScenarioEntry* entry = FindScenario(scen->AsString());
    if (entry == nullptr) {
      m.errors_not_found->Increment();
      respond->Send(ErrorResponse(
          id, "not_found",
          StrFormat("unknown scenario id '%s'", scen->AsString().c_str())));
      return;
    }
    job->scenario = entry->make();
  }

  auto clamp = [](int64_t v, int64_t lo, int64_t hi) { return v < lo ? lo : (v > hi ? hi : v); };
  job->jobs = static_cast<size_t>(
      clamp(doc.Find("jobs") != nullptr ? doc.Find("jobs")->AsInt() : static_cast<int64_t>(options_.jobs),
            1, 64));
  job->deadline_ms = clamp(
      doc.Find("deadline_ms") != nullptr ? doc.Find("deadline_ms")->AsInt() : options_.default_deadline_ms,
      1, options_.max_deadline_ms);
  job->hold_ms =
      clamp(doc.Find("hold_ms") != nullptr ? doc.Find("hold_ms")->AsInt() : 0, 0, options_.max_hold_ms);
  const bool no_cache = doc.Find("no_cache") != nullptr && doc.Find("no_cache")->AsBool();
  job->sarif = doc.Find("sarif") != nullptr && doc.Find("sarif")->AsBool();
  // Chaos runs bypass the cache in both directions: a fault-shaped result
  // must neither be served from nor stored into it. SARIF requests bypass it
  // too: the log is built from the in-memory report, which the cache does
  // not retain, so a hit could not carry one.
  job->cacheable = !no_cache && !job->sarif && !options_.faults.enabled();
  job->fingerprint = ScenarioFingerprint(job->scenario);

  // "stream": true with a frame-capable transport: attach the relay now —
  // before the first lifecycle event — so no frame can be missed, and
  // publish kQueued from the admission thread, which orders it strictly
  // before the worker's kStarted (the queue push happens below).
  if (stream != nullptr && doc.Find("stream") != nullptr && doc.Find("stream")->AsBool()) {
    job->relay = std::make_shared<StreamRelay>(id, stream);
    job->relay->Publish(obs::DiagPhase::kQueued, "svc.queued", job->scenario.id,
                        {{"queue_depth", static_cast<int64_t>(queue_->depth())}});
  }

  if (job->cacheable) {
    if (std::optional<CachedResult> hit = cache_.Get(job->fingerprint)) {
      m.cache_hits->Increment();
      if (job->relay != nullptr) {
        job->relay->Publish(obs::DiagPhase::kDone, "svc.done", hit->status_word,
                            {{"cache_hit", 1}});
        job->relay->Finish();
      }
      respond->Send(ResultResponse(id, job->scenario.id, hit->status_word, "hit",
                                   job->admitted.ElapsedMillis(), hit->report_json));
      return;
    }
    m.cache_misses->Increment();
  }

  const WorkQueue::Push push = queue_->TryPush(job->fingerprint, [this, job, respond] {
    try {
      RunDiagnose(*job, respond);
    } catch (const std::exception& e) {
      Metrics::Get().errors_internal->Increment();
      respond->Send(
          ErrorResponse(job->id, "internal", StrFormat("diagnosis failed: %s", e.what())));
    } catch (...) {
      Metrics::Get().errors_internal->Increment();
      respond->Send(ErrorResponse(job->id, "internal", "diagnosis failed: unknown exception"));
    }
  });
  switch (push) {
    case WorkQueue::Push::kAccepted: {
      m.accepted->Increment();
      const int64_t depth = static_cast<int64_t>(queue_->depth());
      m.queue_depth->Set(depth);
      m.queue_depth_peak->SetMax(depth);
      return;
    }
    case WorkQueue::Push::kOverloaded:
      m.rejected_overloaded->Increment();
      if (job->relay != nullptr) {
        job->relay->Finish();  // flush the queued frame before the terminal
      }
      respond->Send(ErrorResponse(
          id, "overloaded", "admission queue full; retry later",
          StrFormat(",\"retry_after_ms\":%lld",
                    static_cast<long long>(options_.retry_after_ms))));
      return;
    case WorkQueue::Push::kShutdown:
      m.rejected_draining->Increment();
      if (job->relay != nullptr) {
        job->relay->Finish();
      }
      respond->Send(ErrorResponse(id, "draining", "daemon is draining; not admitting requests"));
      return;
  }
}

void Daemon::RunDiagnose(const DiagnoseJob& job, const std::shared_ptr<OnceResponder>& respond) {
  const Metrics& m = Metrics::Get();
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  m.in_flight->Add(1);
  m.queue_depth->Set(static_cast<int64_t>(queue_->depth()));

  if (job.relay != nullptr) {
    job.relay->Publish(obs::DiagPhase::kStarted, "svc.started", job.scenario.id,
                       {{"queue_depth", static_cast<int64_t>(queue_->depth())}});
  }

  // Load/chaos hook: an artificial pre-diagnosis delay, so drivers can pin a
  // worker for a known time. Sliced so a hard drain cuts it short.
  for (int64_t held = 0; held < job.hold_ms && !drain_hard_.load(std::memory_order_acquire);
       held += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const double deadline_seconds = static_cast<double>(job.deadline_ms) / 1e3;
  auto run_watch = std::make_shared<Stopwatch>();
  AitiaOptions options;
  options.set_jobs(job.jobs);
  options.set_deadline(deadline_seconds);
  options.set_replay_cache(options_.replay_cache);
  options.causality.stages = options_.triage_stages;
  if (job.relay != nullptr) {
    options.set_event_scope(job.relay->scope());
  }
  // The cancel probe is the hard bound: it fires when the request exceeds
  // its whole-request budget or when the drain grace expired — either way
  // the supervised stages unwind with kCancelled and the report degrades.
  options.set_cancel([this, run_watch, deadline_seconds] {
    return drain_hard_.load(std::memory_order_acquire) ||
           run_watch->ElapsedSeconds() > deadline_seconds;
  });
  if (options_.faults.enabled()) {
    FaultPlan plan = options_.faults;
    // Vary the fault stream per scenario (deterministically) so a corpus
    // replay does not fail the same way 22 times.
    plan.seed ^= job.fingerprint;
    options.lifs.supervisor.faults = plan;
    options.lifs.supervisor.max_attempts = options_.fault_max_attempts;
    options.causality.supervisor.faults = plan;
    options.causality.supervisor.max_attempts = options_.fault_max_attempts;
  }

  AitiaReport report = DiagnoseScenario(job.scenario, options);
  const std::string report_json = ReportToJson(report, *job.scenario.image);
  const char* status_word = StatusWord(report);

  m.completed->Increment();
  if (std::string(status_word) == "degraded") {
    m.degraded->Increment();
  } else if (job.cacheable) {
    // Only clean outcomes are cacheable; see cache.h.
    cache_.Put(job.fingerprint, {status_word, report_json});
  }
  const double elapsed_ms = job.admitted.ElapsedMillis();
  m.request_ms->Record(static_cast<int64_t>(elapsed_ms));
  std::string extra;
  if (job.sarif) {
    extra = ",\"sarif\":" + tools::ReportToSarif(job.scenario, report);
  }
  if (job.relay != nullptr) {
    job.relay->Publish(obs::DiagPhase::kDone, "svc.done", status_word,
                       {{"diagnosed", report.diagnosed ? 1 : 0},
                        {"degraded", report.degraded ? 1 : 0}});
    // Frames out, then the terminal: Finish() drains the relay queue to the
    // transport before the single-shot responder fires.
    job.relay->Finish();
  }
  respond->Send(ResultResponse(job.id, job.scenario.id, status_word, "miss", elapsed_ms,
                               report_json, extra));

  m.in_flight->Add(-1);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void Daemon::BeginDrain() {
  if (!draining_.exchange(true, std::memory_order_acq_rel)) {
    Metrics::Get().draining->Set(1);
    AITIA_LOG(kInfo) << "aitiad: drain started (queue=" << queue_->depth()
                     << " in_flight=" << in_flight() << ")";
  }
}

void Daemon::Drain() {
  BeginDrain();
  if (drained_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  // Let queued + in-flight work finish under its own deadlines for up to the
  // grace period, then arm the hard cancel probe: supervised runs return
  // kCancelled within a simulator step and the pipeline degrades out.
  Stopwatch grace;
  while ((queue_->depth() > 0 || in_flight() > 0) &&
         grace.ElapsedMillis() < static_cast<double>(options_.drain_grace_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (queue_->depth() > 0 || in_flight() > 0) {
    AITIA_LOG(kWarn) << "aitiad: drain grace expired; cancelling in-flight work";
    drain_hard_.store(true, std::memory_order_release);
  }
  // Authoritative completion barrier: every accepted task has fully run (and
  // responded) once this returns.
  queue_->Drain();
  Metrics::Get().queue_depth->Set(0);
  AITIA_LOG(kInfo) << "aitiad: drain complete";
}

std::string Daemon::MetricsJson() {
  return obs::MetricsRegistry::Global().Snapshot().ToJson();
}

std::string Daemon::StatusJson() const {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  const int64_t hits = snap.counter("svc.cache_hits");
  const int64_t misses = snap.counter("svc.cache_misses");
  const int64_t lookups = hits + misses;
  const auto gauge = [&snap](const char* name) {
    const auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? int64_t{0} : it->second;
  };
  return StrFormat(
      "{\"uptime_seconds\":%.3f,\"draining\":%s,\"queue_depth\":%zu,"
      "\"queue_depth_peak\":%lld,\"in_flight\":%lld,\"accepted\":%lld,"
      "\"completed\":%lld,\"cache_hit_rate\":%.4f,\"stream_frames\":%lld}",
      uptime_.ElapsedSeconds(), draining() ? "true" : "false", queue_->depth(),
      static_cast<long long>(gauge("svc.queue_depth_peak")),
      static_cast<long long>(in_flight()),
      static_cast<long long>(snap.counter("svc.accepted")),
      static_cast<long long>(snap.counter("svc.completed")),
      lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups),
      static_cast<long long>(snap.counter("svc.stream_frames")));
}

}  // namespace svc
}  // namespace aitia
