#include "src/svc/jsonv.h"

#include <cmath>
#include <cstdlib>

#include "src/util/strings.h"

namespace aitia {
namespace svc {

int64_t JsonValue::AsInt(int64_t def) const {
  switch (kind_) {
    case Kind::kInt: return int_;
    case Kind::kDouble: return static_cast<int64_t>(double_);
    default: return def;
  }
}

double JsonValue::AsDouble(double def) const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kDouble: return double_;
    default: return def;
  }
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : fields_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

class Parser {
 public:
  Parser(std::string_view text, int max_depth) : text_(text), max_depth_(max_depth) {}

  StatusOr<JsonValue> Parse() {
    JsonValue v;
    if (Status st = ParseValue(v, 0); !st.ok()) {
      return st;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument(StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Peek(char& c) {
    if (pos_ >= text_.size()) {
      return false;
    }
    c = text_[pos_];
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > max_depth_) {
      return Err("nesting too deep");
    }
    SkipWs();
    char c;
    if (!Peek(c)) {
      return Err("unexpected end of input");
    }
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': out.kind_ = JsonValue::Kind::kString; return ParseString(out.string_);
      case 't':
        if (!Literal("true")) return Err("bad literal");
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return OkStatus();
      case 'f':
        if (!Literal("false")) return Err("bad literal");
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return OkStatus();
      case 'n':
        if (!Literal("null")) return Err("bad literal");
        out.kind_ = JsonValue::Kind::kNull;
        return OkStatus();
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    SkipWs();
    char c;
    if (Peek(c) && c == '}') {
      ++pos_;
      return OkStatus();
    }
    for (;;) {
      SkipWs();
      if (!Peek(c) || c != '"') {
        return Err("expected object key");
      }
      std::string key;
      if (Status st = ParseString(key); !st.ok()) {
        return st;
      }
      SkipWs();
      if (!Peek(c) || c != ':') {
        return Err("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (Status st = ParseValue(value, depth + 1); !st.ok()) {
        return st;
      }
      out.fields_.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (!Peek(c)) {
        return Err("unterminated object");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return OkStatus();
      }
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    SkipWs();
    char c;
    if (Peek(c) && c == ']') {
      ++pos_;
      return OkStatus();
    }
    for (;;) {
      JsonValue value;
      if (Status st = ParseValue(value, depth + 1); !st.ok()) {
        return st;
      }
      out.items_.push_back(std::move(value));
      SkipWs();
      if (!Peek(c)) {
        return Err("unterminated array");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return OkStatus();
      }
      return Err("expected ',' or ']'");
    }
  }

  // Appends the UTF-8 encoding of `cp` to `out`.
  static void AppendUtf8(uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool ParseHex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) {
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = 10 + (c - 'a');
      } else if (c >= 'A' && c <= 'F') {
        digit = 10 + (c - 'A');
      } else {
        return false;
      }
      out = (out << 4) | digit;
    }
    pos_ += 4;
    return true;
  }

  Status ParseString(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return OkStatus();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        return Err("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          uint32_t cp;
          if (!ParseHex4(cp)) {
            return Err("bad \\u escape");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return Err("lone high surrogate");
            }
            pos_ += 2;
            uint32_t low;
            if (!ParseHex4(low) || low < 0xDC00 || low > 0xDFFF) {
              return Err("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Err("lone low surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default: return Err("unknown escape");
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Err("expected a value");
    }
    // Integer part: a leading zero must stand alone (RFC 8259).
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("bad fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("bad exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), nullptr, 10);
      if (errno == 0) {
        out.kind_ = JsonValue::Kind::kInt;
        out.int_ = v;
        return OkStatus();
      }
      // Out of int64 range: fall through to double.
    }
    out.kind_ = JsonValue::Kind::kDouble;
    out.double_ = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out.double_)) {
      return Err("number out of range");
    }
    return OkStatus();
  }

  std::string_view text_;
  int max_depth_;
  size_t pos_ = 0;
};

StatusOr<JsonValue> ParseJson(std::string_view text, int max_depth) {
  return Parser(text, max_depth).Parse();
}

}  // namespace svc
}  // namespace aitia
