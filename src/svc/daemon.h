// aitiad's transport-independent core: request lifecycle, admission control,
// crash isolation, result cache, and graceful drain (DESIGN.md §11).
//
// The Daemon speaks line-delimited JSON: one request object in, exactly one
// terminal response object out — structurally guaranteed by a single-shot
// responder, whatever the request does (parses, diagnoses, hangs until its
// deadline, or explodes). Transports (the TCP listener, the --once stdin
// loop, in-process tests) are thin shells around Submit()/HandleLine().
//
// Request verbs (see README "The aitiad request protocol"):
//   {"verb":"diagnose", "scenario":"CVE-2017-15649"}        corpus id
//   {"verb":"diagnose", "ait":"...", "id":"r1",
//    "jobs":2, "deadline_ms":5000, "hold_ms":0, "no_cache":false,
//    "stream":true, "sarif":true}
//   {"verb":"metrics"}   {"verb":"ping"}   {"verb":"shutdown"}
//
// Streaming: a diagnose request with "stream": true receives zero or more
// NDJSON progress frames {"id":..., "event":{...}} over the same connection
// before — never after — its terminal response. The terminal is still
// exactly one object and carries no "event" key, so existing clients that
// match on "report"/"status" keep working and new clients demux on "event".
// Frames are delivered by a per-request relay pumping the src/obs event bus
// (scope-filtered, bounded, drop-counted); the pipeline itself never blocks
// on a slow streaming consumer.
//
// Failure model, in order of the request pipeline:
//   - oversized / unparseable / unknown-verb input  -> "invalid_argument"
//   - unknown corpus id                             -> "not_found"
//   - malformed .ait text                           -> "invalid_argument"
//   - target queue shard full                       -> "overloaded" (+ retry_after_ms)
//   - drain in progress                             -> "draining"
//   - pipeline Status failure / watchdog / deadline -> "degraded" (partial report)
//   - anything thrown past the request boundary     -> "internal"
// The daemon itself survives all of the above; only the request degrades.

#ifndef SRC_SVC_DAEMON_H_
#define SRC_SVC_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/analysis/triage.h"
#include "src/sim/faults.h"
#include "src/svc/cache.h"
#include "src/svc/work_queue.h"
#include "src/util/stopwatch.h"

namespace aitia {
namespace svc {

struct DaemonOptions {
  // Diagnosis worker threads (requests running concurrently).
  size_t workers = 2;
  // Admission queue geometry: total queued bound = shards × shard_capacity.
  size_t queue_shards = 4;
  size_t shard_capacity = 8;
  // Result-cache entries; 0 disables caching.
  size_t cache_capacity = 128;
  // Pipeline workers *inside* one diagnosis (LIFS frontier / CA flips).
  size_t jobs = 1;
  // Per-request wall-clock budget when the request does not set its own.
  int64_t default_deadline_ms = 20000;
  // Ceiling on client-supplied deadline_ms and hold_ms (admission clamps).
  int64_t max_deadline_ms = 120000;
  int64_t max_hold_ms = 10000;
  // Hint returned with "overloaded" rejections.
  int64_t retry_after_ms = 50;
  // Requests larger than this are rejected before parsing.
  size_t max_request_bytes = 1 << 20;
  // How long Drain() lets in-flight work finish before arming the hard
  // cancel probe that deadlines it out.
  int64_t drain_grace_ms = 5000;
  // Checkpoint/prefix-replay (src/ckpt) inside every diagnosis. Orthogonal
  // to the result cache above: the cache skips whole repeat requests, the
  // replay cache skips re-executed prefixes within one diagnosis. Chaos runs
  // bypass both automatically.
  bool replay_cache = true;
  // Static triage pre-filter stages applied inside every diagnosis
  // (DESIGN.md §13); empty disables the pre-filter (--no-prefilter). Chaos
  // runs disable it automatically — triage proofs assume faultless replay.
  analysis::TriagePipeline triage_stages = analysis::DefaultTriagePipeline();
  // Chaos: fault plan injected into every diagnosis (disabled when empty).
  // Caching is bypassed under chaos — fault-shaped results must not stick.
  FaultPlan faults;
  // Supervisor attempts per run while faults are enabled.
  int fault_max_attempts = 3;
  // Invoked (once) when a client sends the "shutdown" verb, so a blocking
  // transport loop can wake up and start the drain. May be null.
  std::function<void()> on_shutdown_request;
};

class Daemon {
 public:
  using Responder = std::function<void(std::string)>;

  explicit Daemon(DaemonOptions options);
  ~Daemon();  // drains

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Handles one request line. `respond` is called exactly once with the
  // terminal response — inline (rejections, cache hits, protocol errors) or
  // from a worker thread (diagnoses). Safe to call from any thread, also
  // while (or after) draining: post-drain submissions get "draining".
  //
  // `stream` (optional) receives NDJSON progress frames for requests that
  // set "stream": true; it may be called from a relay thread, zero or more
  // times, and always strictly before the terminal `respond`. A null stream
  // downgrades "stream": true to a plain request (no frames).
  void Submit(std::string line, Responder respond, Responder stream = nullptr);

  // Synchronous Submit: blocks until the terminal response is ready (--once
  // mode). `stream` frames, if any, are delivered before this returns.
  std::string HandleLine(const std::string& line, const Responder& stream = nullptr);

  // Stops admitting new diagnosis requests ("draining" rejections).
  void BeginDrain();

  // BeginDrain + waits for in-flight work: up to drain_grace_ms naturally,
  // then arms the cancel probe so supervised runs unwind with kCancelled,
  // and joins the workers. Every accepted request still gets its response.
  // Idempotent.
  void Drain();

  bool draining() const { return draining_.load(std::memory_order_acquire); }
  // True once a client has asked for shutdown via the protocol.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  size_t queue_depth() const { return queue_->depth(); }
  int64_t in_flight() const { return in_flight_.load(std::memory_order_acquire); }

  // Current process-wide metrics snapshot as JSON (the --metrics-json dump).
  static std::string MetricsJson();

  // Service health for the HTTP /statusz endpoint: uptime, queue depth and
  // peak, in-flight, accepted/completed, cache hit rate, drain state.
  std::string StatusJson() const;

 private:
  struct Metrics;
  class OnceResponder;

  void SubmitImpl(std::string line, const std::shared_ptr<OnceResponder>& respond,
                  const Responder& stream);
  void HandleDiagnose(const class JsonValue& doc, const std::string& id,
                      const std::shared_ptr<OnceResponder>& respond,
                      const Responder& stream);
  void RunDiagnose(const struct DiagnoseJob& job,
                   const std::shared_ptr<OnceResponder>& respond);

  const DaemonOptions options_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_hard_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> request_seq_{0};
  Stopwatch uptime_;  // construction time; /statusz uptime
  ResultCache cache_;
  std::unique_ptr<WorkQueue> queue_;
};

}  // namespace svc
}  // namespace aitia

#endif  // SRC_SVC_DAEMON_H_
