// Bounded LRU result cache for the diagnosis service.
//
// Keyed by ScenarioFingerprint (the hash of a scenario's canonical .ait
// form), so a repeat diagnosis — whether it arrives as inline text, a file
// upload, or a corpus id — is idempotent and served without re-running the
// pipeline. Only *clean* terminal results are cached (diagnosed or
// cleanly-not-reproduced with an ok pipeline status): degraded results are
// timing- or fault-dependent, and caching them would freeze one bad run's
// luck into every future response.
//
// Strictly bounded: at most `capacity` entries, eviction is
// least-recently-used, and a capacity of 0 disables the cache entirely.

#ifndef SRC_SVC_CACHE_H_
#define SRC_SVC_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace aitia {
namespace svc {

struct CachedResult {
  std::string status_word;  // "ok" | "not_reproduced" — the response status
  std::string report_json;  // the rendered "report" object, id-independent
};

class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Returns the cached result and marks it most-recently-used.
  std::optional<CachedResult> Get(uint64_t key);

  // Inserts or refreshes; evicts the least-recently-used entry when full.
  void Put(uint64_t key, CachedResult result);

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<uint64_t, CachedResult>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace svc
}  // namespace aitia

#endif  // SRC_SVC_CACHE_H_
