// Hand-rolled HTTP/1.0 scrape plane for aitiad (DESIGN.md §15).
//
// A deliberately tiny read-only responder — no third-party HTTP stack —
// serving the three endpoints an operations loop needs:
//
//   GET /metrics   Prometheus text exposition 0.0.4 of the metrics registry
//   GET /healthz   "ok" while the process is serving
//   GET /statusz   service health JSON (uptime, queue depth/peak, cache hit
//                  rate, in-flight, drain state)
//
// Scope limits, on purpose: GET only (anything else is 405), one request per
// connection (HTTP/1.0, Connection: close), request line + headers capped at
// 4 KiB, reads bounded by a socket timeout so a stalled scraper cannot wedge
// the responder. The server binds 127.0.0.1 only, mirroring the diagnosis
// port. Body producers are injected callbacks, so the server owns no
// knowledge of daemon internals and tests can drive it hermetically.

#ifndef SRC_SVC_HTTP_H_
#define SRC_SVC_HTTP_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "src/util/status.h"

namespace aitia {
namespace svc {

struct HttpServerOptions {
  // Port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  int port = 0;
  // Body producers. A null callback 404s its endpoint.
  std::function<std::string()> metrics;  // text/plain; version=0.0.4
  std::function<std::string()> statusz;  // application/json
  // True while the process is healthy; null means "always ok".
  std::function<bool()> healthy;
  // Socket receive timeout while reading a request, milliseconds.
  int64_t read_timeout_ms = 2000;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options);
  ~HttpServer();  // Stop()s

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the accept thread. Fails with kUnavailable
  // when the port cannot be bound.
  Status Start();

  // The bound port (after Start(); useful with port 0).
  int port() const { return port_; }

  // Stops accepting, wakes the accept loop, joins. Idempotent.
  void Stop();

 private:
  void Serve();
  void HandleConnection(int fd);

  const HttpServerOptions options_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

// Renders one HTTP/1.0 response (status line, minimal headers, body).
// Exposed for the responder tests' independent round-trip checks.
std::string HttpResponse(int code, const char* reason, const std::string& content_type,
                         const std::string& body);

}  // namespace svc
}  // namespace aitia

#endif  // SRC_SVC_HTTP_H_
