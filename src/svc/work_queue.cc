#include "src/svc/work_queue.h"

#include <utility>

namespace aitia {
namespace svc {

WorkQueue::WorkQueue(Options options)
    : options_([&] {
        if (options.shards == 0) {
          options.shards = 1;
        }
        if (options.shard_capacity == 0) {
          options.shard_capacity = 1;
        }
        return options;
      }()),
      pool_(options_.workers) {
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

WorkQueue::~WorkQueue() { Drain(); }

WorkQueue::Push WorkQueue::TryPush(uint64_t shard_hint, std::function<void()> task) {
  if (stopping_.load(std::memory_order_acquire)) {
    return Push::kShutdown;
  }
  Shard& shard = *shards_[shard_hint % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.q.size() >= options_.shard_capacity) {
      return Push::kOverloaded;
    }
    shard.q.push_back(std::move(task));
  }
  depth_.fetch_add(1, std::memory_order_relaxed);
  // One pump per accepted task. TrySubmit can only refuse here because
  // Drain() raced us and already shut the pool down; the task stays in its
  // shard and Drain's inline sweep picks it up, preserving the acceptance
  // guarantee without un-pushing (another pump may already have consumed
  // this slot's task, so removal would be ambiguous).
  (void)pool_.TrySubmit([this] { RunOne(); });
  return Push::kAccepted;
}

void WorkQueue::RunOne() {
  std::function<void()> task;
  const size_t n = shards_.size();
  const size_t start = static_cast<size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) % n;
  for (size_t i = 0; i < n && !task; ++i) {
    Shard& shard = *shards_[(start + i) % n];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.q.empty()) {
      task = std::move(shard.q.front());
      shard.q.pop_front();
    }
  }
  if (!task) {
    return;  // defensive: pumps never outnumber tasks, but stay safe anyway
  }
  depth_.fetch_sub(1, std::memory_order_relaxed);
  task();
}

void WorkQueue::Drain() {
  stopping_.store(true, std::memory_order_release);
  // Runs every accepted pump, then joins the workers. Idempotent.
  pool_.Shutdown();
  // Sweep any task whose pump lost the shutdown race: it was accepted, so it
  // must still run — inline, on the draining thread.
  for (;;) {
    std::function<void()> task;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (!shard->q.empty()) {
        task = std::move(shard->q.front());
        shard->q.pop_front();
        break;
      }
    }
    if (!task) {
      break;
    }
    depth_.fetch_sub(1, std::memory_order_relaxed);
    task();
  }
}

}  // namespace svc
}  // namespace aitia
