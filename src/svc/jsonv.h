// Minimal JSON value parser for the aitiad request protocol.
//
// The daemon reads one JSON object per line from untrusted clients, so the
// parser is written for hostility, not generality: every malformed input
// yields a Status (never an abort or an exception), nesting depth and input
// size are bounded, and numbers/strings are validated strictly per RFC 8259.
// The repo's JSON *writers* (report, metrics, trace) stay where they are;
// this is the read side only, and only the service layer uses it.

#ifndef SRC_SVC_JSONV_H_
#define SRC_SVC_JSONV_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace aitia {
namespace svc {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_string() const { return kind_ == Kind::kString; }

  // Typed readers with defaults; wrong-kind reads return the default rather
  // than aborting (the daemon validates kinds where it matters).
  bool AsBool(bool def = false) const { return kind_ == Kind::kBool ? bool_ : def; }
  int64_t AsInt(int64_t def = 0) const;
  double AsDouble(double def = 0) const;
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& fields() const { return fields_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> fields_;
};

// Parses exactly one JSON value spanning all of `text` (trailing garbage is
// an error). Limits: `max_depth` nesting levels; the caller bounds the input
// size before calling. Errors carry a byte offset for diagnostics.
StatusOr<JsonValue> ParseJson(std::string_view text, int max_depth = 32);

}  // namespace svc
}  // namespace aitia

#endif  // SRC_SVC_JSONV_H_
