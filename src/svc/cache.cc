#include "src/svc/cache.h"

namespace aitia {
namespace svc {

std::optional<CachedResult> ResultCache::Get(uint64_t key) {
  if (capacity_ == 0) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::Put(uint64_t key, CachedResult result) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result));
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace svc
}  // namespace aitia
