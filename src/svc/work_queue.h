// Bounded, sharded admission queue feeding the diagnosis workers.
//
// This is the daemon's load-shedding boundary (DESIGN.md §11): a request is
// either accepted — and then guaranteed to run exactly once, even across a
// drain — or rejected *immediately* at push time while the queue still holds
// at most `shards × shard_capacity` tasks. Nothing ever blocks or buffers
// without bound, so a flood costs rejections, not memory.
//
// Structure: K shards (mutex + deque each), addressed by the caller's shard
// hint (the scenario fingerprint), in front of a ThreadPool of W workers.
// Each accepted task enqueues one "pump" via ThreadPool::TrySubmit; a pump
// pops one task from the shards in round-robin order, so a hot shard cannot
// starve the others and #pending-pumps always equals #queued-tasks. If the
// pool begins shutdown between the shard push and the pump submit, the task
// stays queued and Drain()'s inline sweep runs it — accepted still means
// "will run".

#ifndef SRC_SVC_WORK_QUEUE_H_
#define SRC_SVC_WORK_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/util/thread_pool.h"

namespace aitia {
namespace svc {

class WorkQueue {
 public:
  struct Options {
    size_t workers = 1;
    size_t shards = 1;
    size_t shard_capacity = 8;
  };

  enum class Push {
    kAccepted,    // will run exactly once
    kOverloaded,  // the target shard is full — shed immediately
    kShutdown,    // drain has begun — no longer admitting
  };

  explicit WorkQueue(Options options);
  ~WorkQueue();

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  // Non-blocking admission. `shard_hint` routes the task (hint % shards).
  Push TryPush(uint64_t shard_hint, std::function<void()> task);

  // Tasks queued but not yet started (never exceeds shards × shard_capacity).
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }

  // Stops admitting, runs every accepted task, joins the workers.
  // Idempotent; called by the destructor.
  void Drain();

  size_t worker_count() const { return pool_.worker_count(); }

 private:
  void RunOne();

  struct Shard {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  const Options options_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> depth_{0};
  std::atomic<uint64_t> rr_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool pool_;  // declared last: its dtor joins before shards die
};

}  // namespace svc
}  // namespace aitia

#endif  // SRC_SVC_WORK_QUEUE_H_
