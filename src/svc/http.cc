#include "src/svc/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace aitia {
namespace svc {

namespace {

// Request line + headers larger than this are rejected; scrape requests are
// a few hundred bytes.
constexpr size_t kMaxRequestBytes = 4096;

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;  // scraper went away; nothing to salvage
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

std::string HttpResponse(int code, const char* reason, const std::string& content_type,
                         const std::string& body) {
  return StrFormat(
      "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n%s",
      code, reason, content_type.c_str(), body.size(), body.c_str());
}

HttpServer::HttpServer(HttpServerOptions options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (pipe(stop_pipe_) != 0) {
    return Status::Unavailable(StrFormat("http: pipe: %s", std::strerror(errno)));
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(StrFormat("http: socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(listen_fd_, 16) != 0) {
    const Status status =
        Status::Unavailable(StrFormat("http: bind/listen on port %d: %s", options_.port,
                                      std::strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof addr;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  thread_ = std::thread([this] { Serve(); });
  return Status();
}

void HttpServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) {
      thread_.join();
    }
    return;
  }
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!write(stop_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
}

void HttpServer::Serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if ((fds[1].revents & POLLIN) != 0 || stopping_.load(std::memory_order_acquire)) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int client = accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    // Requests are handled inline on the accept thread: bodies are built
    // from in-memory snapshots in microseconds, and the read timeout bounds
    // how long a stalled scraper can hold the loop.
    timeval tv = {};
    tv.tv_sec = options_.read_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((options_.read_timeout_ms % 1000) * 1000);
    setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    HandleConnection(client);
    close(client);
  }
}

void HttpServer::HandleConnection(int fd) {
  static obs::Counter* const requests =
      obs::MetricsRegistry::Global().GetCounter("svc.http_requests");
  requests->Increment();

  // Read until the header terminator (we ignore headers, but draining them
  // keeps clients that send them happy) or the size cap.
  std::string request;
  char chunk[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // EOF, timeout, or error
    }
    request.append(chunk, static_cast<size_t>(n));
    // A bare "GET /path HTTP/1.0\n" with no headers is complete too.
    if (request.find('\n') != std::string::npos) {
      break;
    }
  }

  const size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  // "GET <path> HTTP/1.x" — method and path split on single spaces.
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendAll(fd, HttpResponse(400, "Bad Request", "text/plain; charset=utf-8",
                             "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);  // the endpoints take no parameters
  }
  if (method != "GET") {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain; charset=utf-8",
                             "only GET is supported\n"));
    return;
  }

  if (path == "/healthz") {
    const bool ok = options_.healthy == nullptr || options_.healthy();
    SendAll(fd, HttpResponse(ok ? 200 : 503, ok ? "OK" : "Service Unavailable",
                             "text/plain; charset=utf-8", ok ? "ok\n" : "draining\n"));
    return;
  }
  if (path == "/metrics" && options_.metrics != nullptr) {
    SendAll(fd, HttpResponse(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                             options_.metrics()));
    return;
  }
  if (path == "/statusz" && options_.statusz != nullptr) {
    SendAll(fd, HttpResponse(200, "OK", "application/json", options_.statusz()));
    return;
  }
  SendAll(fd, HttpResponse(404, "Not Found", "text/plain; charset=utf-8",
                           "unknown path; try /metrics /healthz /statusz\n"));
}

}  // namespace svc
}  // namespace aitia
