#include "src/bugs/registry.h"

#include <cstdlib>

#include "src/util/log.h"

namespace aitia {

const std::vector<ScenarioEntry>& AllScenarios() {
  static const std::vector<ScenarioEntry> kScenarios = {
      // Table 2 (CVEs).
      {"CVE-2019-11486", MakeCve2019_11486},
      {"CVE-2019-6974", MakeCve2019_6974},
      {"CVE-2018-12232", MakeCve2018_12232},
      {"CVE-2017-15649", MakeCve2017_15649},
      {"CVE-2017-10661", MakeCve2017_10661},
      {"CVE-2017-7533", MakeCve2017_7533},
      {"CVE-2017-2671", MakeCve2017_2671},
      {"CVE-2017-2636", MakeCve2017_2636},
      {"CVE-2016-10200", MakeCve2016_10200},
      {"CVE-2016-8655", MakeCve2016_8655},
      // Table 3 (syzkaller bugs).
      {"syz-01", MakeSyz01L2tpOob},
      {"syz-02", MakeSyz02PacketAssert},
      {"syz-03", MakeSyz03Pppol2tpUaf},
      {"syz-04", MakeSyz04KvmIrqfdUaf},
      {"syz-05", MakeSyz05RxrpcUaf},
      {"syz-06", MakeSyz06BpfGpf},
      {"syz-07", MakeSyz07BlockUaf},
      {"syz-08", MakeSyz08CanJ1939Refcount},
      {"syz-09", MakeSyz09SeccompLeak},
      {"syz-10", MakeSyz10MdAssert},
      {"syz-11", MakeSyz11FloppyAssert},
      {"syz-12", MakeSyz12BluetoothScoUaf},
      // Abstract figures.
      {"fig-1", MakeFig1},
      {"fig-5", MakeFig5},
      {"fig-4b", MakeFig4b},
      {"fig-4c", MakeFig4c},
      {"fig-7", MakeFig7},
      // §4.6 future-work extension: hardware-IRQ contexts.
      {"ext-irq", MakeExtIrqSerialUaf},
  };
  return kScenarios;
}

std::vector<ScenarioEntry> Table2Scenarios() {
  std::vector<ScenarioEntry> out;
  for (const auto& e : AllScenarios()) {
    if (std::string(e.id).rfind("CVE-", 0) == 0) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<ScenarioEntry> Table3Scenarios() {
  std::vector<ScenarioEntry> out;
  for (const auto& e : AllScenarios()) {
    if (std::string(e.id).rfind("syz-", 0) == 0) {
      out.push_back(e);
    }
  }
  return out;
}

const ScenarioEntry* FindScenario(const std::string& id) {
  for (const auto& e : AllScenarios()) {
    if (id == e.id) {
      return &e;
    }
  }
  return nullptr;
}

BugScenario MakeScenario(const std::string& id) {
  const ScenarioEntry* entry = FindScenario(id);
  if (entry == nullptr) {
    AITIA_LOG(kError) << "unknown scenario: " << id;
    std::abort();
  }
  return entry->make();
}

}  // namespace aitia
