// Bug-scenario framework.
//
// Each of the paper's 22 evaluated bugs (Tables 2 and 3) plus the abstract
// figures is modeled as a BugScenario: a kernel image (programs + globals),
// the failing concurrent group, optional setup syscalls and fuzzing noise,
// and ground truth used by the benchmarks to score AITIA and the baselines.

#ifndef SRC_BUGS_SCENARIO_H_
#define SRC_BUGS_SCENARIO_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fuzz/fuzzer.h"
#include "src/sim/failure.h"
#include "src/sim/program.h"
#include "src/sim/thread.h"

namespace aitia {

struct GroundTruth {
  FailureType failure_type = FailureType::kNone;
  bool multi_variable = false;
  bool loosely_correlated = false;
  // Paper-reported columns used for paper-vs-measured comparison.
  int paper_chain_races = 0;       // Table 3 "# of races in chain" (0 = n/a)
  int paper_interleavings = 1;     // Tables 2/3 "Inter." column
  // What this modeled scenario is designed to produce (asserted by tests;
  // may differ from the paper numbers where the model simplifies — any gap
  // is recorded in EXPERIMENTS.md). 0 = only assert a non-empty chain.
  int expected_chain_races = 0;
  int expected_interleavings = 1;
  // Names of the globals (or object field descriptions) actually racing.
  std::vector<std::string> racing_globals;
  // Whether the MUVI access-correlation assumption holds for the bug.
  bool muvi_assumption_holds = false;
  // Whether the root cause fits a single-variable atomicity/order-violation
  // pattern (what Gist/Snorlax-style localization can express).
  bool single_variable_pattern = false;
  bool expect_ambiguity = false;
};

struct BugScenario {
  std::string id;         // "CVE-2017-15649", "syz-04", "fig-1", ...
  std::string subsystem;  // "Packet socket", "KVM", ...
  std::string bug_kind;   // "Assertion violation", "Use-after-free access", ...
  std::shared_ptr<KernelImage> image;

  // The failing concurrent group and its sequential prologue.
  std::vector<ThreadSpec> slice;
  std::vector<ThreadSpec> setup;
  // Resource tags, parallel to slice/setup (empty = none).
  std::vector<std::string> slice_resources;
  std::vector<std::string> setup_resources;
  // Extra concurrent noise syscalls for the fuzzing workload.
  std::vector<ThreadSpec> noise;
  // Hardware-IRQ sources LIFS may inject (§4.6 extension scenarios).
  std::vector<IrqLine> irq_lines;

  GroundTruth truth;

  // Fuzzing workload: slice + noise.
  FuzzWorkload MakeWorkload() const;
};

// Address ranges of the bug's true racing state: each racing global's own
// cell plus, when the global holds a heap pointer after setup, the pointed
// object's cells. Used by the benchmarks to score baseline outputs.
std::vector<std::pair<Addr, Addr>> RacingAddressRanges(const BugScenario& scenario);

// True if `addr` falls in any of `ranges` ([begin, end) pairs).
bool InRanges(const std::vector<std::pair<Addr, Addr>>& ranges, Addr addr);

}  // namespace aitia

#endif  // SRC_BUGS_SCENARIO_H_
