#include "src/bugs/diagnose.h"

namespace aitia {

AitiaReport DiagnoseScenario(const BugScenario& scenario, AitiaOptions options) {
  if (!options.lifs.target.has_value() && !options.lifs.target_type.has_value() &&
      scenario.truth.failure_type != FailureType::kNone) {
    options.lifs.target_type = scenario.truth.failure_type;
  }
  if (options.lifs.irq_lines.empty()) {
    options.lifs.irq_lines = scenario.irq_lines;
  }
  return DiagnoseSlice(*scenario.image, scenario.slice, scenario.setup, options);
}

}  // namespace aitia
