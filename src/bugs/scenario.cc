#include "src/bugs/scenario.h"

#include "src/sim/builder.h"
#include "src/sim/kernel.h"

namespace aitia {
namespace {

// Lazily installs a generic background-activity program in the image: a few
// kernel daemons hammering shared statistics counters. Real failed
// executions from a bug finder are full of such benign traffic (§2.3, §5.2)
// — this is what the fuzzing workload drags in around every bug.
ProgramId EnsureBackgroundNoise(KernelImage& image) {
  ProgramId existing = image.FindProgram("bg_stats_daemon");
  if (existing != kNoProgram) {
    return existing;
  }
  constexpr int kCounters = 4;
  constexpr int kRounds = 4;
  std::vector<Addr> counters;
  counters.reserve(kCounters);
  for (int i = 0; i < kCounters; ++i) {
    counters.push_back(image.AddGlobal("bg_stat_" + std::to_string(i), 0));
  }
  ProgramBuilder b("bg_stats_daemon");
  b.MovImm(R7, kRounds).Label("round");
  for (int i = 0; i < kCounters; ++i) {
    std::string tag = "N" + std::to_string(i);
    b.Lea(R1, counters[static_cast<size_t>(i)])
        .Load(R2, R1)
        .Note(tag + ": per-cpu stat read (benign)")
        .AddImm(R2, R2, 1)
        .Store(R1, R2)
        .Note(tag + "': per-cpu stat write (benign)");
  }
  b.AddImm(R7, R7, -1).Bnez(R7, "round").Exit();
  return image.AddProgram(b.Build());
}

}  // namespace

std::vector<std::pair<Addr, Addr>> RacingAddressRanges(const BugScenario& scenario) {
  std::vector<std::pair<Addr, Addr>> ranges;
  // Probe sim: runs the setup phase so published pointers are visible.
  KernelSim probe(scenario.image.get(), scenario.slice, scenario.setup);
  for (const std::string& name : scenario.truth.racing_globals) {
    const Addr g = scenario.image->GlobalAddr(name);
    ranges.emplace_back(g, g + 1);
    const Word value = probe.memory().Peek(g);
    if (value > 0) {
      const HeapObject* obj = probe.memory().FindObject(static_cast<Addr>(value));
      if (obj != nullptr) {
        ranges.emplace_back(obj->base, obj->base + static_cast<Addr>(obj->cells));
      }
    }
  }
  return ranges;
}

bool InRanges(const std::vector<std::pair<Addr, Addr>>& ranges, Addr addr) {
  for (const auto& [begin, end] : ranges) {
    if (addr >= begin && addr < end) {
      return true;
    }
  }
  return false;
}

FuzzWorkload BugScenario::MakeWorkload() const {
  FuzzWorkload w;
  w.image = image.get();
  w.threads = slice;
  w.resources = slice_resources;
  w.resources.resize(w.threads.size());
  for (const ThreadSpec& n : noise) {
    w.threads.push_back(n);
    w.resources.emplace_back();
  }
  // Failed executions at the bug finder are full of unrelated kernel
  // activity; two stats daemons provide the benign-race background the
  // paper's conciseness numbers are measured against (§5.2).
  ProgramId daemon = EnsureBackgroundNoise(*image);
  w.threads.push_back({"kworker:events#stats0", daemon, 0, ThreadKind::kKworker});
  w.threads.push_back({"kworker:events#stats1", daemon, 0, ThreadKind::kKworker});
  w.resources.emplace_back();
  w.resources.emplace_back();
  w.setup = setup;
  w.setup_resources = setup_resources;
  w.setup_resources.resize(w.setup.size());
  return w;
}

}  // namespace aitia
