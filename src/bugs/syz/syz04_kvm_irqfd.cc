// syz-04 — "KASAN: use-after-free Write in irq_bypass_register_consumer"
// (KVM, Figure 9).
//
// Syscall A initializes an irqfd in two non-atomic steps: it links the
// object into a consumer list, then fills in its payload. Syscall B
// concurrently unregisters: it pops the list and hands the object to a
// kworker that frees it. The race A1 => B1 steers B into spawning the
// kworker at all, and K1 => A2 lands the write in freed memory:
//
//   A:  A1 list_add(irqfd, consumers);     B:  B1 d = list_pop(consumers);
//       A2 irqfd->data = token;  <- UAF        B2 if (d) queue_work(kfree, d);
//                                          K:  K1 kfree(d);
//
// The list (irq bypass layer) and the irqfd payload (KVM layer) are loosely
// correlated. Expected chain (Figure 9b): (A1 => B1) --> (K1 => A2) --> UAF.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz04KvmIrqfdUaf() {
  BugScenario s;
  s.id = "syz-04";
  s.subsystem = "KVM";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr consumers = image.AddGlobal("irq_bypass_consumers", 0);
  const Addr irqfd_slot = image.AddGlobal("irqfd_object", 0);

  ProgramId kfree_work;
  {
    ProgramBuilder b("irqfd_shutdown_work");
    b.Free(R0)
        .Note("K1: kfree(irqfd)")
        .Exit();
    kfree_work = image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("irqfd_setup");
    b.Alloc(R1, 2)
        .Note("S1: irqfd = kzalloc()")
        .Lea(R2, irqfd_slot)
        .Store(R2, R1)
        .Note("S2: stash irqfd")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("irq_bypass_register");
    b.Lea(R1, irqfd_slot)
        .Load(R2, R1)
        .Note("A0: irqfd = this->irqfd")
        .Lea(R3, consumers)
        .ListAdd(R3, R2)
        .Note("A1: list_add(irqfd, &consumers)")
        .StoreImm(R2, 42, 0)
        .Note("A2: irqfd->data = token  <- UAF write if K1 => A2")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("irq_bypass_unregister");
    b.Lea(R1, consumers)
        .ListPop(R2, R1)
        .Note("B1: d = list_pop(&consumers)")
        .Beqz(R2, "out")
        .QueueWork(kfree_work, R2)
        .Note("B2: queue_work(irqfd_shutdown, d)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  {
    ProgramBuilder b("irq_bypass_list_query");
    b.Lea(R1, consumers)
        .ListLen(R2, R1)
        .Note("N1: len(&consumers) (bypass-layer-only noise)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"ioctl(KVM_IRQFD)", image.ProgramByName("irqfd_setup"), 0, ThreadKind::kSyscall}};
  s.setup_resources = {"kvm_fd"};
  s.slice = {
      {"ioctl(KVM_IRQFD, assign)", image.ProgramByName("irq_bypass_register"), 0,
       ThreadKind::kSyscall},
      {"ioctl(KVM_IRQFD, deassign)", image.ProgramByName("irq_bypass_unregister"), 0,
       ThreadKind::kSyscall},
  };
  s.slice_resources = {"kvm_fd", "kvm_fd"};
  s.noise = {
      {"ioctl(query) #1", image.ProgramByName("irq_bypass_list_query"), 0, ThreadKind::kSyscall},
      {"ioctl(query) #2", image.ProgramByName("irq_bypass_list_query"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kUseAfterFreeWrite;
  s.truth.multi_variable = true;
  s.truth.loosely_correlated = true;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"irq_bypass_consumers", "irqfd_object"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
