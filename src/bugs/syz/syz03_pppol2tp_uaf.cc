// syz-03 — "KASAN: use-after-free Read in pppol2tp_connect" (L2TP).
//
// connect() looks up the session while a concurrent tunnel teardown marks
// it deleted and frees it; the deleted flag and the session pointer are
// semantically correlated:
//
//   A (pppol2tp_connect):              B (tunnel_delete):
//   A1 if (tunnel->deleted) ret;       B1 tunnel->deleted = 1;
//   A2 s = tunnel->session;            B2 kfree(tunnel->session);
//   A3 use(s->state);       <- UAF
//
// Expected chain: (A1 => B1) --> (B2 => A3) --> UAF read.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz03Pppol2tpUaf() {
  BugScenario s;
  s.id = "syz-03";
  s.subsystem = "L2TP";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr deleted = image.AddGlobal("tunnel_deleted", 0);
  const Addr session = image.AddGlobal("tunnel_session", 0);

  {
    ProgramBuilder b("l2tp_tunnel_setup");
    b.Alloc(R1, 2)
        .Note("S1: session = kmalloc()")
        .StoreImm(R1, 1, 0)
        .Note("S2: session->state = CONNECTED")
        .Lea(R2, session)
        .Store(R2, R1)
        .Note("S3: tunnel->session = session")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("pppol2tp_connect");
    b.Lea(R1, deleted)
        .Load(R2, R1)
        .Note("A1: if (tunnel->deleted) return")
        .Bnez(R2, "out")
        .Lea(R3, session)
        .Load(R4, R3)
        .Note("A2: s = tunnel->session")
        .Load(R5, R4, 0)
        .Note("A3: use(s->state)  <- UAF read")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("l2tp_tunnel_delete");
    b.Lea(R1, deleted)
        .StoreImm(R1, 1)
        .Note("B1: tunnel->deleted = 1")
        .Lea(R2, session)
        .Load(R3, R2)
        .Note("B1': s = tunnel->session")
        .Free(R3)
        .Note("B2: kfree(session)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"socket(PPPOL2TP)", image.ProgramByName("l2tp_tunnel_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"tunnel_fd"};
  s.slice = {
      {"connect(pppol2tp)", image.ProgramByName("pppol2tp_connect"), 0, ThreadKind::kSyscall},
      {"close(tunnel)", image.ProgramByName("l2tp_tunnel_delete"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"tunnel_fd", "tunnel_fd"};

  s.truth.failure_type = FailureType::kUseAfterFreeRead;
  s.truth.multi_variable = true;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"tunnel_deleted", "tunnel_session"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
