// syz-06 — "general protection fault in dev_map_hash_update_elem" (BPF).
//
// A map resize swaps the bucket table and its stride and defers freeing the
// old table to a kworker; a concurrent update samples the *old* table
// pointer with the *new* stride, computing a wild address:
//
//   A (bpf update_elem):               B (bpf map resize):
//   A1 t = map->table;                 B1 old = map->table;
//   A2 h = t[0];        (header)      B2 new = kmalloc(big);
//   A3 s = map->stride;                B3 map->table = new;
//   A4 read t[s];       <- GPF         B4 map->stride = 32;
//                                      B5 queue_work(kfree, old);
//                                      K:  K1 kfree(old);
//
// Expected chain: (A1 => B3) ∧ (B4 => A3) --> GPF (plus the kworker free
// racing the header read).

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz06BpfGpf() {
  BugScenario s;
  s.id = "syz-06";
  s.subsystem = "BPF";
  s.bug_kind = "General protection fault";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr table = image.AddGlobal("devmap_table", 0);
  const Addr stride = image.AddGlobal("devmap_stride", 1);

  ProgramId kfree_work;
  {
    ProgramBuilder b("devmap_free_work");
    b.Free(R0)
        .Note("K1: kfree(old_table)")
        .Exit();
    kfree_work = image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("devmap_setup");
    b.Alloc(R1, 2)
        .Note("S1: table = kmalloc(2)")
        .Lea(R2, table)
        .Store(R2, R1)
        .Note("S2: map->table = table")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("dev_map_update_elem");
    b.Lea(R1, table)
        .Load(R2, R1)
        .Note("A1: t = map->table")
        .Load(R3, R2, 0)
        .Note("A2: h = t[0] (bucket header)")
        .Lea(R4, stride)
        .Load(R5, R4)
        .Note("A3: s = map->stride")
        .Add(R6, R2, R5)
        .Load(R7, R6)
        .Note("A4: read t[s]  <- GPF with old table, new stride")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("dev_map_resize");
    b.Lea(R1, table)
        .Load(R2, R1)
        .Note("B1: old = map->table")
        .Alloc(R3, 200)
        .Note("B2: new = kmalloc(200)")
        .Store(R1, R3)
        .Note("B3: map->table = new")
        .Lea(R4, stride)
        .StoreImm(R4, 32)
        .Note("B4: map->stride = 32")
        .QueueWork(kfree_work, R2)
        .Note("B5: queue_work(free_work, old)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"bpf(BPF_MAP_CREATE)", image.ProgramByName("devmap_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"map_fd"};
  s.slice = {
      {"bpf(BPF_MAP_UPDATE_ELEM)", image.ProgramByName("dev_map_update_elem"), 0,
       ThreadKind::kSyscall},
      {"bpf(map_resize)", image.ProgramByName("dev_map_resize"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"map_fd", "map_fd"};

  s.truth.failure_type = FailureType::kGeneralProtection;
  s.truth.multi_variable = true;
  s.truth.paper_chain_races = 4;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 3;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"devmap_table", "devmap_stride"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
