// syz-07 — "KASAN: use-after-free Read in delete_partition" (Block device).
//
// BLKPG partition deletion races with an open() that already resolved the
// partition pointer; deletion clears the slot, drops the reference and
// frees, while the opener keeps dereferencing:
//
//   A (ioctl BLKPG_DEL):               B (open(partition)):
//   A1 p = disk->part[n];              B1 p = disk->part[n];
//   A2 disk->part[n] = NULL;              if (!p) return;
//   A3 kfree(p);                       B2 use(p->start_sect);
//                                      B3 use(p->nr_sects);   <- UAF
//
// Expected chain: (B1 => A2) --> (A3 => B2) --> UAF read.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz07BlockUaf() {
  BugScenario s;
  s.id = "syz-07";
  s.subsystem = "Block device";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr part_slot = image.AddGlobal("disk_part_slot", 0);
  const Addr disk_stats = image.AddGlobal("disk_in_flight", 0);

  {
    ProgramBuilder b("partition_setup");
    b.Alloc(R1, 2)
        .Note("S1: part = kmalloc()")
        .StoreImm(R1, 2048, 0)
        .Note("S2: part->start_sect = 2048")
        .StoreImm(R1, 4096, 1)
        .Note("S3: part->nr_sects = 4096")
        .Lea(R2, part_slot)
        .Store(R2, R1)
        .Note("S4: disk->part[n] = part")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("blkpg_del_partition");
    b.Lea(R1, part_slot)
        .Load(R2, R1)
        .Note("A1: p = disk->part[n]")
        .Beqz(R2, "out")
        .StoreImm(R1, 0)
        .Note("A2: disk->part[n] = NULL")
        .Free(R2)
        .Note("A3: kfree(p)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("blkdev_open");
    b.Lea(R8, disk_stats)
        .Load(R9, R8)
        .Note("B-st: in_flight++ (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("B-st': in_flight++ (benign)")
        .Lea(R1, part_slot)
        .Load(R2, R1)
        .Note("B1: p = disk->part[n]")
        .Beqz(R2, "out")
        .Load(R3, R2, 0)
        .Note("B2: use(p->start_sect)")
        .Load(R4, R2, 1)
        .Note("B3: use(p->nr_sects)  <- UAF read")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"ioctl(BLKPG_ADD)", image.ProgramByName("partition_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"blk_fd"};
  s.slice = {
      {"ioctl(BLKPG_DEL)", image.ProgramByName("blkpg_del_partition"), 0, ThreadKind::kSyscall},
      {"open(/dev/sda1)", image.ProgramByName("blkdev_open"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"blk_fd", "blk_fd"};

  s.truth.failure_type = FailureType::kUseAfterFreeRead;
  s.truth.multi_variable = false;
  s.truth.paper_chain_races = 4;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"disk_part_slot"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
