// syz-09 — "memory leak in do_seccomp" (Seccomp).
//
// Two concurrent filter installs both observe "no filter installed yet",
// both allocate, and the second publish overwrites the first pointer — the
// first filter becomes unreachable and leaks. The installed flag (task
// state) and the filter pointer (seccomp layer) are loosely correlated.
// A three-thread slice: two installers plus the closing path that frees the
// published filter.
//
//   A/B (seccomp install):             C (exit/free):
//   I1 f = kmalloc();                  C1 p = task->filter;
//   I2 if (task->installed)            C2 if (p) kfree(p);
//   I3     { kfree(f); return; }       C3 task->filter = NULL;
//   I4 task->filter = f;     <- lost update leaks the other filter
//   I5 task->installed = 1;
//
// Expected chain: the I2 => I5 check/publish race --> memory leak.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

void BuildInstall(KernelImage& image, const char* name, const char* tag, Addr installed,
                  Addr filter) {
  std::string t(tag);
  ProgramBuilder b(name);
  b.Alloc(R1, 1, /*leak_checked=*/true)
      .Note(t + "1: f = kmalloc(filter)")
      .Lea(R2, installed)
      .Load(R3, R2)
      .Note(t + "2: if (task->installed)")
      .Beqz(R3, "publish")
      .Free(R1)
      .Note(t + "3: kfree(f); return -EEXIST")
      .Exit()
      .Label("publish")
      .Lea(R4, filter)
      .Store(R4, R1)
      .Note(t + "4: task->filter = f")
      .Lea(R5, installed)
      .StoreImm(R5, 1)
      .Note(t + "5: task->installed = 1")
      .Exit();
  image.AddProgram(b.Build());
}

}  // namespace

BugScenario MakeSyz09SeccompLeak() {
  BugScenario s;
  s.id = "syz-09";
  s.subsystem = "Seccomp";
  s.bug_kind = "Memory leak";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr installed = image.AddGlobal("seccomp_installed", 0);
  const Addr filter = image.AddGlobal("seccomp_filter", 0);

  BuildInstall(image, "seccomp_install_a", "A", installed, filter);
  BuildInstall(image, "seccomp_install_b", "B", installed, filter);
  {
    ProgramBuilder b("seccomp_release");
    b.Lea(R1, filter)
        .Load(R2, R1)
        .Note("C1: p = task->filter")
        .Beqz(R2, "out")
        .Free(R2)
        .Note("C2: kfree(p)")
        .StoreImm(R1, 0)
        .Note("C3: task->filter = NULL")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  {
    ProgramBuilder b("seccomp_get_mode");
    b.Lea(R1, installed)
        .Load(R2, R1)
        .Note("N1: read task->installed (noise)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"seccomp(SET_MODE_FILTER) #1", image.ProgramByName("seccomp_install_a"), 0,
       ThreadKind::kSyscall},
      {"seccomp(SET_MODE_FILTER) #2", image.ProgramByName("seccomp_install_b"), 0,
       ThreadKind::kSyscall},
      {"exit_group()", image.ProgramByName("seccomp_release"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"task", "task", "task"};
  s.noise = {
      {"seccomp(GET_MODE) #1", image.ProgramByName("seccomp_get_mode"), 0, ThreadKind::kSyscall},
      {"seccomp(GET_MODE) #2", image.ProgramByName("seccomp_get_mode"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kMemoryLeak;
  s.truth.multi_variable = true;
  s.truth.loosely_correlated = true;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 0;  // assert non-empty only (leak chains vary)
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"seccomp_installed", "seccomp_filter"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
