// syz-02 — "general protection fault in packet_lookup_frame" modeled as the
// paper reports it: an assertion violation on the ring state machine
// (Packet socket, single variable, a long causality chain).
//
// One state word ping-pongs between the two syscalls; each transition is
// race-steered by the previous one:
//
//   A (setsockopt):                    B (poll):
//   A1 st = 1;                         B1 if (st == 1)
//   A2 if (st == 2)                    B2     st = 2;
//   A3     st = 3;                     B3 if (st == 3)
//                                      B4     BUG();   // frame state invalid
//
// Expected chain: (A1=>B1) --> (B2=>A2) --> (A3=>B3) --> BUG.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz02PacketAssert() {
  BugScenario s;
  s.id = "syz-02";
  s.subsystem = "Packet socket";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr frame_st = image.AddGlobal("ring_frame_status", 0);

  {
    ProgramBuilder b("packet_setsockopt");
    b.Lea(R1, frame_st)
        .StoreImm(R1, 1)
        .Note("A1: frame->status = TP_STATUS_SEND_REQUEST")
        .Load(R2, R1)
        .Note("A2: if (frame->status == TP_STATUS_SENDING)")
        .MovImm(R3, 2)
        .Bne(R2, R3, "out")
        .StoreImm(R1, 3)
        .Note("A3: frame->status = TP_STATUS_CLOSING")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("packet_poll");
    b.Lea(R1, frame_st)
        .Load(R2, R1)
        .Note("B1: if (frame->status == TP_STATUS_SEND_REQUEST)")
        .MovImm(R3, 1)
        .Bne(R2, R3, "out")
        .StoreImm(R1, 2)
        .Note("B2: frame->status = TP_STATUS_SENDING")
        .Load(R4, R1)
        .Note("B3: if (frame->status == TP_STATUS_CLOSING)")
        .MovImm(R5, 3)
        .Bne(R4, R5, "out")
        .MovImm(R6, 0)
        .BugOn(R6)
        .Note("B4: BUG: invalid frame state transition")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"setsockopt(PACKET_TX_RING)", image.ProgramByName("packet_setsockopt"), 0,
       ThreadKind::kSyscall},
      {"poll(packet)", image.ProgramByName("packet_poll"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"packet_fd", "packet_fd"};

  s.truth.failure_type = FailureType::kAssertViolation;
  s.truth.multi_variable = false;
  s.truth.paper_chain_races = 4;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 3;
  s.truth.expected_interleavings = 2;
  s.truth.racing_globals = {"ring_frame_status"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
