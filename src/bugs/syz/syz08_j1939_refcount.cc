// syz-08 — "WARNING: refcount bug in j1939_netdev_start" (CAN).
//
// A second bind() takes a reference on the per-netdev j1939 priv while a
// concurrent unbind tears it down: the teardown flag, the refcount, and the
// priv pointer interact across two preemptions (the paper reproduces this
// bug with 2 interleavings — the only Table 3 entry needing more than one):
//
//   A (bind#2):                        B (unbind):
//   A1 if (priv->teardown) ret;        B0 priv->teardown = 1;
//   A2 p = dev->j1939_priv;            B5 z = refcount_dec(&p->rx_kref);
//   A3 if (priv->teardown) ret;        if (z) {
//   A4 refcount_inc(&p->rx_kref);      B6   dev->j1939_priv = NULL;
//      <- WARN: inc-from-zero          B7   kfree(p); }
//
// The WARN needs A1..A3 before B0 and A4 after B5 but *before* B7 (else the
// symptom is a KASAN UAF instead): two preemption points.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz08CanJ1939Refcount() {
  BugScenario s;
  s.id = "syz-08";
  s.subsystem = "CAN";
  s.bug_kind = "Refcount warning";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr teardown = image.AddGlobal("j1939_teardown", 0);
  const Addr priv_ptr = image.AddGlobal("j1939_priv", 0);

  {
    ProgramBuilder b("j1939_setup");
    b.Alloc(R1, 2)
        .Note("S1: priv = kzalloc()")
        .StoreImm(R1, 1, 0)
        .Note("S2: refcount_set(&priv->rx_kref, 1)")
        .Lea(R2, priv_ptr)
        .Store(R2, R1)
        .Note("S3: dev->j1939_priv = priv")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("j1939_bind");
    b.Lea(R1, teardown)
        .Load(R2, R1)
        .Note("A1: if (priv->teardown) return")
        .Bnez(R2, "out")
        .Lea(R3, priv_ptr)
        .Load(R4, R3)
        .Note("A2: p = dev->j1939_priv")
        .Beqz(R4, "out")
        .Load(R5, R1)
        .Note("A3: recheck priv->teardown")
        .Bnez(R5, "out")
        .RefGet(R4, 0)
        .Note("A4: refcount_inc(&p->rx_kref)  <- WARN on inc-from-zero")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("j1939_unbind");
    b.Lea(R1, teardown)
        .StoreImm(R1, 1)
        .Note("B0: priv->teardown = 1")
        .Lea(R2, priv_ptr)
        .Load(R3, R2)
        .Note("B1: p = dev->j1939_priv")
        .Beqz(R3, "out")
        .RefPut(R4, R3, 0)
        .Note("B5: z = refcount_dec(&p->rx_kref)")
        .Beqz(R4, "out")
        .StoreImm(R2, 0)
        .Note("B6: dev->j1939_priv = NULL")
        .Free(R3)
        .Note("B7: kfree(priv)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"bind(j1939) #1", image.ProgramByName("j1939_setup"), 0, ThreadKind::kSyscall}};
  s.setup_resources = {"can_fd"};
  s.slice = {
      {"bind(j1939) #2", image.ProgramByName("j1939_bind"), 0, ThreadKind::kSyscall},
      {"close(j1939)", image.ProgramByName("j1939_unbind"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"can_fd", "can_fd"};

  s.truth.failure_type = FailureType::kRefcountWarning;
  s.truth.multi_variable = true;
  s.truth.paper_chain_races = 5;
  s.truth.paper_interleavings = 2;
  s.truth.expected_chain_races = 4;
  s.truth.expected_interleavings = 2;
  s.truth.racing_globals = {"j1939_teardown", "j1939_priv"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
