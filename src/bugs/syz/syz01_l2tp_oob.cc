// syz-01 — "KASAN: slab-out-of-bounds Read in pppol2tp_connect" (L2TP).
//
// A reconfiguration path in the L2TP layer enlarges the session's payload
// offset; the transmit path in the net core indexes an sk_buff with it. The
// flag and the offset live in the L2TP session while the buffer belongs to
// the networking core — loosely correlated objects (§2.2):
//
// The offset is only enlarged transiently while the reconfiguration is in
// flight, so the bug needs the reader to interleave into the window:
//
//   A (setsockopt L2TP):               B (sendmsg):
//   A1 sess->reconfigured = 1;         B1 if (sess->reconfigured)
//   A2 sess->offset = 3;               B2     off = sess->offset; else off=1;
//   A3 sess->offset = 1;               B3 read skb[off];      <- OOB
//   A4 sess->reconfigured = 0;
//
// Expected chain: (A1 => B1) --> (A2 => B2) --> slab-out-of-bounds.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz01L2tpOob() {
  BugScenario s;
  s.id = "syz-01";
  s.subsystem = "L2TP";
  s.bug_kind = "Slab-out-of-bound access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr reconf = image.AddGlobal("sess_reconfigured", 0);
  const Addr sess_off = image.AddGlobal("sess_offset", 1);
  const Addr skb_head = image.AddGlobal("skb_head", 0);
  const Addr tx_bytes = image.AddGlobal("tx_bytes", 0);

  {
    ProgramBuilder b("l2tp_session_setup");
    b.Alloc(R1, 2)
        .Note("S1: skb = alloc_skb(2)")
        .Lea(R2, skb_head)
        .Store(R2, R1)
        .Note("S2: publish skb")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("l2tp_setsockopt");
    b.Lea(R1, reconf)
        .StoreImm(R1, 1)
        .Note("A1: sess->reconfigured = 1")
        .Lea(R2, sess_off)
        .StoreImm(R2, 3)
        .Note("A2: sess->offset = 3 (transient)")
        .StoreImm(R2, 1)
        .Note("A3: sess->offset = 1 (reconfig settles)")
        .StoreImm(R1, 0)
        .Note("A4: sess->reconfigured = 0")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("pppol2tp_sendmsg");
    b.Lea(R1, reconf)
        .Load(R2, R1)
        .Note("B1: if (sess->reconfigured)")
        .MovImm(R3, 1)
        .Beqz(R2, "have_off")
        .Lea(R4, sess_off)
        .Load(R3, R4)
        .Note("B2: off = sess->offset")
        .Label("have_off")
        .Lea(R5, skb_head)
        .Load(R6, R5)
        .Note("B2': skb = sess->skb")
        .Add(R7, R6, R3)
        .Load(R8, R7)
        .Note("B3: read skb[off]  <- OOB with the enlarged offset")
        .Lea(R9, tx_bytes)
        .Load(R10, R9)
        .Note("B-st: tx_bytes += len (benign)")
        .AddImm(R10, R10, 8)
        .Store(R9, R10)
        .Note("B-st': tx_bytes += len (benign)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"socket(PPPOL2TP)", image.ProgramByName("l2tp_session_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"l2tp_fd"};
  {
    ProgramBuilder b("l2tp_getsockopt");
    b.Lea(R1, reconf)
        .Load(R2, R1)
        .Note("N1: read sess->reconfigured (noise)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"setsockopt(L2TP)", image.ProgramByName("l2tp_setsockopt"), 0, ThreadKind::kSyscall},
      {"sendmsg(l2tp)", image.ProgramByName("pppol2tp_sendmsg"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"l2tp_fd", "l2tp_fd"};
  s.noise = {
      {"getsockopt(L2TP) #1", image.ProgramByName("l2tp_getsockopt"), 0, ThreadKind::kSyscall},
      {"getsockopt(L2TP) #2", image.ProgramByName("l2tp_getsockopt"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kOutOfBounds;
  s.truth.multi_variable = true;
  s.truth.loosely_correlated = true;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 3;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"sess_reconfigured", "sess_offset"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
