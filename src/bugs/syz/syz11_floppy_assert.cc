// syz-11 — "WARNING in schedule_bh" (Floppy).
//
// Two paths schedule floppy bottom-half work concurrently; the handler
// WARNs when it observes itself re-entered:
//
//   each path: F1 n = fdc_inside_bh;
//              F2 WARN_ON(n != 0);
//              F3 fdc_inside_bh = 1;
//              ... bottom half ...
//              F4 fdc_inside_bh = 0;
//
// Expected chain: (F3 of one thread => F1 of the other) --> WARNING.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

void BuildScheduleBh(KernelImage& image, const char* name, const char* tag, Addr inside_bh) {
  std::string t(tag);
  ProgramBuilder b(name);
  b.Lea(R1, inside_bh)
      .Load(R2, R1)
      .Note(t + "1: n = fdc_inside_bh")
      .Beqz(R2, "enter")
      .MovImm(R3, 0)
      .WarnOn(R3)
      .Note(t + "2: WARNING in schedule_bh: re-entered")
      .Label("enter")
      .StoreImm(R1, 1)
      .Note(t + "3: fdc_inside_bh = 1")
      .Nop()
      .Note(t + "-bh: run bottom half")
      .StoreImm(R1, 0)
      .Note(t + "4: fdc_inside_bh = 0")
      .Exit();
  image.AddProgram(b.Build());
}

}  // namespace

BugScenario MakeSyz11FloppyAssert() {
  BugScenario s;
  s.id = "syz-11";
  s.subsystem = "Floppy";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr inside_bh = image.AddGlobal("fdc_inside_bh", 0);

  BuildScheduleBh(image, "floppy_schedule_bh_a", "A", inside_bh);
  BuildScheduleBh(image, "floppy_schedule_bh_b", "B", inside_bh);

  s.slice = {
      {"ioctl(FDRAWCMD) #1", image.ProgramByName("floppy_schedule_bh_a"), 0,
       ThreadKind::kSyscall},
      {"ioctl(FDRAWCMD) #2", image.ProgramByName("floppy_schedule_bh_b"), 0,
       ThreadKind::kSyscall},
  };
  s.slice_resources = {"fd0", "fd0"};

  s.truth.failure_type = FailureType::kWarning;
  s.truth.multi_variable = false;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"fdc_inside_bh"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
