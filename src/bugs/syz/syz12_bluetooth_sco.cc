// syz-12 — "Bluetooth: fix dangling sco_conn and use-after-free in
// sco_sock_timeout" (Bluetooth).
//
// The SCO socket timeout handler runs in a kworker and dereferences
// sk->conn while a concurrent close frees the connection and only then
// clears the pointer:
//
//   A (close):                         K (sco_sock_timeout, kworker):
//   A1 c = sk->conn;                   K1 c = sk->conn;
//   A2 kfree(c);                          if (!c) return;
//   A3 sk->conn = NULL;                K2 use(c->state);   <- UAF read
//
// Expected chain: (K1 => A3) --> (A2 => K2) --> UAF read.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz12BluetoothScoUaf() {
  BugScenario s;
  s.id = "syz-12";
  s.subsystem = "Bluetooth";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr sco_conn = image.AddGlobal("sco_sk_conn", 0);

  {
    ProgramBuilder b("sco_connect_setup");
    b.Alloc(R1, 2)
        .Note("S1: conn = kmalloc()")
        .StoreImm(R1, 1, 0)
        .Note("S2: conn->state = BT_CONNECTED")
        .Lea(R2, sco_conn)
        .Store(R2, R1)
        .Note("S3: sk->conn = conn")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("sco_sock_close");
    b.Lea(R1, sco_conn)
        .Load(R2, R1)
        .Note("A1: c = sk->conn")
        .Beqz(R2, "out")
        .Free(R2)
        .Note("A2: kfree(c)  <- freed before unpublishing")
        .StoreImm(R1, 0)
        .Note("A3: sk->conn = NULL")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("sco_sock_timeout");
    b.Lea(R1, sco_conn)
        .Load(R2, R1)
        .Note("K1: c = sk->conn")
        .Beqz(R2, "out")
        .Load(R3, R2, 0)
        .Note("K2: use(c->state)  <- UAF read")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"connect(sco)", image.ProgramByName("sco_connect_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"sco_fd"};
  s.slice = {
      {"close(sco)", image.ProgramByName("sco_sock_close"), 0, ThreadKind::kSyscall},
      {"sco_sock_timeout", image.ProgramByName("sco_sock_timeout"), 0, ThreadKind::kKworker},
  };
  s.slice_resources = {"sco_fd", "sco_fd"};

  s.truth.failure_type = FailureType::kUseAfterFreeRead;
  s.truth.multi_variable = false;
  s.truth.paper_chain_races = 4;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"sco_sk_conn"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
