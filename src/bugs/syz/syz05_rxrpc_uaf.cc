// syz-05 — "KASAN: use-after-free Read in rxrpc_queue_local" (RxRPC).
//
// Closing an rxrpc socket schedules the local endpoint for destruction via
// an RCU callback; a concurrent sendmsg still dereferences it. A
// single-variable bug whose chain has exactly one race — the free in the
// deferred context versus the use in the syscall:
//
//   A (close):                         B (sendmsg):
//   A1 l = sk->local;                  B1 l = sk->local;
//   A2 call_rcu(rxrpc_local_rcu, l);   B2 use(l->usage);   <- UAF
//   K (rcu callback): K1 kfree(l);
//
// Expected chain: (K1 => B2) --> UAF read.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeSyz05RxrpcUaf() {
  BugScenario s;
  s.id = "syz-05";
  s.subsystem = "RxRPC";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr local_ptr = image.AddGlobal("rxrpc_local", 0);

  ProgramId rcu_cb;
  {
    ProgramBuilder b("rxrpc_local_rcu");
    b.Free(R0)
        .Note("K1: kfree(local)")
        .Exit();
    rcu_cb = image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("rxrpc_setup");
    b.Alloc(R1, 2)
        .Note("S1: local = kmalloc()")
        .StoreImm(R1, 1, 0)
        .Note("S2: local->usage = 1")
        .Lea(R2, local_ptr)
        .Store(R2, R1)
        .Note("S3: sk->local = local")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("rxrpc_release");
    b.Lea(R1, local_ptr)
        .Load(R2, R1)
        .Note("A1: l = sk->local")
        .CallRcu(rcu_cb, R2)
        .Note("A2: call_rcu(&l->rcu, rxrpc_local_rcu)")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("rxrpc_sendmsg");
    b.Lea(R1, local_ptr)
        .Load(R2, R1)
        .Note("B1: l = sk->local")
        .Load(R3, R2, 0)
        .Note("B2: use(l->usage)  <- UAF when K1 => B2")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"socket(AF_RXRPC)", image.ProgramByName("rxrpc_setup"), 0, ThreadKind::kSyscall}};
  s.setup_resources = {"rxrpc_fd"};
  s.slice = {
      {"close(rxrpc)", image.ProgramByName("rxrpc_release"), 0, ThreadKind::kSyscall},
      {"sendmsg(rxrpc)", image.ProgramByName("rxrpc_sendmsg"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"rxrpc_fd", "rxrpc_fd"};

  s.truth.failure_type = FailureType::kUseAfterFreeRead;
  s.truth.multi_variable = false;
  s.truth.paper_chain_races = 1;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 1;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"rxrpc_local"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
