// syz-10 — "md: fix a warning caused by a race between concurrent
// md_ioctl()s" (Software RAID).
//
// Two md_ioctl calls bump and check the in-flight counter without holding
// the mddev lock; a lost-update between the increment and the consistency
// check trips the WARN:
//
//   each ioctl: I1 c  = mddev->active_io;
//               I2 mddev->active_io = c + 1;
//               ... do work ...
//               I3 c2 = mddev->active_io;
//               I4 WARN_ON(c2 != c + 1);
//
// Expected chain: the cross-thread increment landing between I2 and I3.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

void BuildMdIoctl(KernelImage& image, const char* name, const char* tag, Addr active_io) {
  std::string t(tag);
  ProgramBuilder b(name);
  b.Lea(R1, active_io)
      .Load(R2, R1)
      .Note(t + "1: c = mddev->active_io")
      .AddImm(R3, R2, 1)
      .Store(R1, R3)
      .Note(t + "2: mddev->active_io = c + 1")
      .Load(R4, R1)
      .Note(t + "3: c2 = mddev->active_io")
      .Beq(R4, R3, "ok")
      .MovImm(R5, 0)
      .WarnOn(R5)
      .Note(t + "4: WARNING in md_ioctl: active_io inconsistent")
      .Label("ok")
      .Exit();
  image.AddProgram(b.Build());
}

}  // namespace

BugScenario MakeSyz10MdAssert() {
  BugScenario s;
  s.id = "syz-10";
  s.subsystem = "Software RAID";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr active_io = image.AddGlobal("mddev_active_io", 0);

  BuildMdIoctl(image, "md_ioctl_a", "A", active_io);
  BuildMdIoctl(image, "md_ioctl_b", "B", active_io);

  s.slice = {
      {"ioctl(md, GET_ARRAY_INFO)", image.ProgramByName("md_ioctl_a"), 0, ThreadKind::kSyscall},
      {"ioctl(md, RUN_ARRAY)", image.ProgramByName("md_ioctl_b"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"md_fd", "md_fd"};

  s.truth.failure_type = FailureType::kWarning;
  s.truth.multi_variable = false;
  s.truth.paper_chain_races = 4;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 0;  // assert non-empty
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"mddev_active_io"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
