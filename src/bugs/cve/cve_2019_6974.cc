// CVE-2019-6974 — KVM device fd published before the kvm reference is taken.
//
// kvm_ioctl_create_device() installs the device's fd into the fd table
// (VFS layer) *before* grabbing a reference on the kvm object (KVM layer).
// A concurrent close() on the guessed fd releases the last kvm reference and
// frees the kvm struct, so the creator's later refcount_inc lands in freed
// memory:
//
//   A (ioctl KVM_CREATE_DEVICE):       B (close(fd)):
//   A1 dev = kmalloc();                B1 d = fd_table[fd]; if (!d) return;
//   A2 fd_table[fd] = dev;             B2 fd_table[fd] = 0;
//   A3 refcount_inc(&kvm->users);      B3 if (refcount_dec(&kvm->users)==0)
//   A4 dev->kvm = kvm;                 B4     kfree(kvm);
//
// The racing objects — the fd table slot (VFS) and the kvm object (KVM) —
// are *loosely correlated* (§2.2): most syscalls touch one without the
// other. Expected chain: (A2 => B1) --> (B4 => A3) --> UAF write.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2019_6974() {
  BugScenario s;
  s.id = "CVE-2019-6974";
  s.subsystem = "KVM";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr fd_slot = image.AddGlobal("fd_table_slot", 0);
  const Addr kvm_ptr = image.AddGlobal("kvm_ptr", 0);
  const Addr vfs_stats = image.AddGlobal("vfs_open_count", 0);

  // setup: create the VM object with one live reference.
  {
    ProgramBuilder b("kvm_create_vm_setup");
    b.Alloc(R1, 2)
        .Note("S1: kvm = kzalloc()")
        .StoreImm(R1, 1, 0)
        .Note("S2: refcount_set(&kvm->users, 1)")
        .Lea(R2, kvm_ptr)
        .Store(R2, R1)
        .Note("S3: publish kvm")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("kvm_create_device");
    b.Lea(R8, vfs_stats)
        .Load(R9, R8)
        .Note("A-st: vfs stats (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("A-st': vfs stats (benign)")
        .Alloc(R1, 2)
        .Note("A1: dev = kmalloc()")
        .Lea(R2, fd_slot)
        .Store(R2, R1)
        .Note("A2: fd_install(fd, dev)  <- fd visible too early")
        .Lea(R3, kvm_ptr)
        .Load(R4, R3)
        .Note("A3: kvm = this->kvm")
        .RefGet(R4, 0)
        .Note("A3': refcount_inc(&kvm->users)  <- UAF if B4 => A3'")
        .Store(R1, R4, 1)
        .Note("A4: dev->kvm = kvm")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("close_fd");
    b.Lea(R1, fd_slot)
        .Load(R2, R1)
        .Note("B1: d = fd_table[fd]")
        .Lea(R3, kvm_ptr)
        .Load(R4, R3)
        .Note("B1': kvm = file->private_data")
        .Beqz(R2, "out")
        .StoreImm(R1, 0)
        .Note("B2: fd_table[fd] = NULL")
        .RefPut(R5, R4, 0)
        .Note("B3': refcount_dec(&kvm->users)")
        .Beqz(R5, "out")
        .Free(R4)
        .Note("B4: kfree(kvm)")
        .Free(R2)
        .Note("B4': kfree(dev)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {
      {"ioctl(KVM_CREATE_VM)", image.ProgramByName("kvm_create_vm_setup"), 0,
       ThreadKind::kSyscall}};
  s.setup_resources = {"kvm_fd"};
  {
    ProgramBuilder b("vfs_fd_read");
    b.Lea(R1, fd_slot)
        .Load(R2, R1)
        .Note("N1: d = fd_table[fd] (VFS-only noise)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"ioctl(KVM_CREATE_DEVICE)", image.ProgramByName("kvm_create_device"), 0,
       ThreadKind::kSyscall},
      {"close(device_fd)", image.ProgramByName("close_fd"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"kvm_fd", "kvm_fd"};
  s.noise = {
      {"read(device_fd)", image.ProgramByName("vfs_fd_read"), 0, ThreadKind::kSyscall},
      {"fstat(device_fd)", image.ProgramByName("vfs_fd_read"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kUseAfterFreeWrite;
  s.truth.multi_variable = true;
  s.truth.loosely_correlated = true;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"fd_table_slot", "kvm_ptr"};
  s.truth.muvi_assumption_holds = false;  // loosely correlated objects
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
