// CVE-2017-2636 — n_hdlc line discipline double free.
//
// Two concurrent flush paths both pick up n_hdlc->tbuf and free it; the
// classic single-variable atomicity violation behind the published
// exploit:
//
//   each thread:  b = n_hdlc->tbuf;
//                 if (!b) return;
//                 kfree(b);            <- second thread double-frees
//                 n_hdlc->tbuf = NULL;
//
// Expected chain: one atomicity-violation order (A reads, B frees between
// A's read and A's free) --> double-free.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

void BuildFlush(KernelImage& image, const char* name, const char* tag, Addr tbuf,
                Addr stats) {
  std::string t(tag);
  ProgramBuilder b(name);
  b.Lea(R8, stats)
      .Load(R9, R8)
      .Note(t + "-st: tty stats (benign)")
      .AddImm(R9, R9, 1)
      .Store(R8, R9)
      .Note(t + "-st': tty stats (benign)")
      .Lea(R1, tbuf)
      .Load(R2, R1)
      .Note(t + "1: b = n_hdlc->tbuf")
      .Beqz(R2, "out")
      .Free(R2)
      .Note(t + "2: kfree(b)")
      .StoreImm(R1, 0)
      .Note(t + "3: n_hdlc->tbuf = NULL")
      .Label("out")
      .Exit();
  image.AddProgram(b.Build());
}

}  // namespace

BugScenario MakeCve2017_2636() {
  BugScenario s;
  s.id = "CVE-2017-2636";
  s.subsystem = "TTY";
  s.bug_kind = "Double free";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr tbuf = image.AddGlobal("n_hdlc_tbuf", 0);
  const Addr stats = image.AddGlobal("tty_flush_stats", 0);

  {
    ProgramBuilder b("n_hdlc_setup");
    b.Alloc(R1, 2)
        .Note("S1: tbuf = kmalloc()")
        .Lea(R2, tbuf)
        .Store(R2, R1)
        .Note("S2: n_hdlc->tbuf = tbuf")
        .Exit();
    image.AddProgram(b.Build());
  }
  BuildFlush(image, "n_hdlc_flush_a", "A", tbuf, stats);
  BuildFlush(image, "n_hdlc_flush_b", "B", tbuf, stats);

  s.setup = {{"ioctl(TIOCSETD, N_HDLC)", image.ProgramByName("n_hdlc_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"tty_fd"};
  s.slice = {
      {"write(tty)", image.ProgramByName("n_hdlc_flush_a"), 0, ThreadKind::kSyscall},
      {"ioctl(TCFLSH)", image.ProgramByName("n_hdlc_flush_b"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"tty_fd", "tty_fd"};

  s.truth.failure_type = FailureType::kDoubleFree;
  s.truth.multi_variable = false;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"n_hdlc_tbuf"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
