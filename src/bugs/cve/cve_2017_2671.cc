// CVE-2017-2671 — ping socket unhash vs connect (NULL function pointer).
//
// ping_unhash() clears sk->sk_prot state while a concurrent connect() still
// expects it; the connect path then calls through a NULL pointer. A clean
// single-variable order violation — the kind of bug pattern-based
// localization *can* express (§5.3):
//
//   A (disconnect -> ping_unhash):     B (connect):
//   A1 sk->prot_hook = NULL;           B1 if (!sk->prot_hook) return;
//                                      B2 h = sk->prot_hook;  // re-read
//                                      B3 call h->func;    <- NULL deref
//
// Expected chain: (B1 => A1) --> (A1 => B2) --> null-ptr-deref.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2017_2671() {
  BugScenario s;
  s.id = "CVE-2017-2671";
  s.subsystem = "IPV4";
  s.bug_kind = "NULL pointer dereference";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr prot_hook = image.AddGlobal("sk_prot_hook", 0);
  const Addr snmp_stats = image.AddGlobal("snmp_out_requests", 0);

  {
    ProgramBuilder b("ping_setup");
    b.Alloc(R1, 1)
        .Note("S1: hook = kmalloc()")
        .StoreImm(R1, 4242, 0)
        .Note("S2: hook->func = ping_v4_sendmsg")
        .Lea(R2, prot_hook)
        .Store(R2, R1)
        .Note("S3: sk->prot_hook = hook")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("ping_unhash");
    b.Lea(R1, prot_hook)
        .StoreImm(R1, 0)
        .Note("A1: sk->prot_hook = NULL")
        .Lea(R8, snmp_stats)
        .Load(R9, R8)
        .Note("A-st: SNMP counter (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("A-st': SNMP counter (benign)")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("ping_connect");
    b.Lea(R1, prot_hook)
        .Load(R2, R1)
        .Note("B1: if (!sk->prot_hook) return")
        .Beqz(R2, "out")
        .Load(R3, R1)
        .Note("B2: h = sk->prot_hook (re-read)")
        .Load(R4, R3, 0)
        .Note("B3: call h->func  <- NULL deref when A1 => B2")
        .Lea(R8, snmp_stats)
        .Load(R9, R8)
        .Note("B-st: SNMP counter (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("B-st': SNMP counter (benign)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"socket(SOCK_DGRAM, ICMP)", image.ProgramByName("ping_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"ping_fd"};
  s.slice = {
      {"connect(AF_UNSPEC)", image.ProgramByName("ping_unhash"), 0, ThreadKind::kSyscall},
      {"connect(addr)", image.ProgramByName("ping_connect"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"ping_fd", "ping_fd"};

  s.truth.failure_type = FailureType::kNullDeref;
  s.truth.multi_variable = false;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"sk_prot_hook"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
