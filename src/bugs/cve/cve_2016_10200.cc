// CVE-2016-10200 — L2TP: connect races with bind on the tunnel socket.
//
// l2tp_ip_bind publishes the bound socket and sets the bound flag without
// holding the socket lock against a concurrent connect; the lookup path can
// observe the two stores in an impossible combination. Modeled so the two
// races form a surrounding/nested pair — this is the one evaluation bug for
// which AITIA reports an *ambiguous* case (§5.1):
//
//   A (bind):                          B (connect/lookup):
//   A1 tunnel->sk = sk;                B1 bound = tunnel->bound;
//   A2 tunnel->bound = 1;              B2 s = tunnel->sk;
//                                      if (bound && s) BUG();  // bad combo
//
// A1 => B2 surrounds A2 => B1; flipping either avoids the failure, so the
// surrounding race cannot be attributed (Figure 7).

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2016_10200() {
  BugScenario s;
  s.id = "CVE-2016-10200";
  s.subsystem = "L2TP";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr tunnel_sk = image.AddGlobal("l2tp_tunnel_sk", 0);
  const Addr tunnel_bound = image.AddGlobal("l2tp_tunnel_bound", 0);

  {
    ProgramBuilder b("l2tp_bind");
    b.Lea(R1, tunnel_sk)
        .StoreImm(R1, 888)
        .Note("A1: tunnel->sk = sk")
        .Lea(R2, tunnel_bound)
        .StoreImm(R2, 1)
        .Note("A2: tunnel->bound = 1")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("l2tp_connect");
    b.Lea(R1, tunnel_bound)
        .Load(R2, R1)
        .Note("B1: bound = tunnel->bound")
        .Lea(R3, tunnel_sk)
        .Load(R4, R3)
        .Note("B2: s = tunnel->sk")
        .Beqz(R2, "ok")
        .Beqz(R4, "ok")
        .MovImm(R5, 0)
        .BugOn(R5)
        .Note("B3: BUG: bound tunnel with live sk during connect")
        .Label("ok")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"bind(l2tp)", image.ProgramByName("l2tp_bind"), 0, ThreadKind::kSyscall},
      {"connect(l2tp)", image.ProgramByName("l2tp_connect"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"l2tp_fd", "l2tp_fd"};

  s.truth.failure_type = FailureType::kAssertViolation;
  s.truth.multi_variable = true;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 0;
  s.truth.racing_globals = {"l2tp_tunnel_sk", "l2tp_tunnel_bound"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  s.truth.expect_ambiguity = true;  // the one ambiguous case in §5.1
  return s;
}

}  // namespace aitia
