// CVE-2017-15649 — packet fanout multi-variable race (Figure 2).
//
//   Thread A: setsockopt(PACKET_FANOUT_ADD) -> fanout_add()
//   Thread B: bind()                        -> packet_do_bind()
//
//   A2  if (!po->running) return -EINVAL;      B2   if (po->fanout) return;
//   A5  match = kmalloc();                     B11  po->running = 0;
//   A6  po->fanout = match;                    B12  if (po->fanout)
//   A8  fanout_link();                         B13      fanout_unlink();
//   A12   list_add(sk, &global_list);          B17  BUG_ON(!list_contains(sk));
//                                              B7   fanout_link();
//
// po->running and po->fanout are semantically correlated; the failure needs
// (A2 => B11) ∧ (B2 => A6), which steers B into fanout_unlink (A6 => B12)
// before thread A linked sk (B17 => A12): BUG_ON. Two preemptions reproduce
// it, matching the paper's "Inter. 2" for this CVE. Expected chain ==
// Figure 6(b):
//   (A2=>B11) ∧ (B2=>A6) --> (A6=>B12) --> (B17=>A12) --> BUG_ON
//
// Both handlers bump a socket statistics counter — benign races Causality
// Analysis must rule out.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2017_15649() {
  BugScenario s;
  s.id = "CVE-2017-15649";
  s.subsystem = "Packet socket";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr po_running = image.AddGlobal("po_running", 1);
  const Addr po_fanout = image.AddGlobal("po_fanout", 0);
  const Addr global_list = image.AddGlobal("fanout_global_list", 0);
  const Addr stats = image.AddGlobal("po_stats", 0);
  constexpr Word kSk = 777;  // the shared struct sock*

  {
    ProgramBuilder b("fanout_add");
    b.Lea(R8, stats)
        .Load(R9, R8)
        .Note("A-st: po->stats++ (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("A-st': po->stats++ (benign)")
        .Lea(R1, po_running)
        .Load(R2, R1)
        .Note("A2: if (!po->running)")
        .Beqz(R2, "einval")
        .Alloc(R3, 1)
        .Note("A5: match = kmalloc()")
        .Lea(R4, po_fanout)
        .Store(R4, R3)
        .Note("A6: po->fanout = match")
        .Call("fanout_link")
        .Note("A8: fanout_link()")
        .Exit()
        .Label("einval")
        .Exit()
        .Label("fanout_link")
        .Lea(R5, global_list)
        .MovImm(R6, kSk)
        .ListAdd(R5, R6)
        .Note("A12: list_add(sk, &global_list)")
        .Ret();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("packet_do_bind");
    b.Lea(R8, stats)
        .Load(R9, R8)
        .Note("B-st: po->stats++ (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("B-st': po->stats++ (benign)")
        .Lea(R1, po_fanout)
        .Load(R2, R1)
        .Note("B2: if (po->fanout)")
        .Bnez(R2, "einval")
        .Call("unregister_hook")
        .Note("B5: unregister_hook()")
        .Call("fanout_link")
        .Note("B7: fanout_link()")
        .Exit()
        .Label("einval")
        .Exit()
        .Label("unregister_hook")
        .Lea(R3, po_running)
        .StoreImm(R3, 0)
        .Note("B11: po->running = 0")
        .Lea(R4, po_fanout)
        .Load(R5, R4)
        .Note("B12: if (po->fanout)")
        .Beqz(R5, "uh_ret")
        .Call("fanout_unlink")
        .Note("B13: fanout_unlink(sk, po)")
        .Label("uh_ret")
        .Ret()
        .Label("fanout_unlink")
        .Lea(R6, global_list)
        .MovImm(R7, kSk)
        .ListContains(R10, R6, R7)
        .Note("B17: BUG_ON(!list_contains(sk, &global_list))")
        .BugOn(R10)
        .Note("B17': BUG_ON fires")
        .Ret()
        .Label("fanout_link")
        .Lea(R6, global_list)
        .MovImm(R7, kSk)
        .ListAdd(R6, R7)
        .Note("B7': list_add(sk, &global_list)")
        .Ret();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"setsockopt(PACKET_FANOUT_ADD)", image.ProgramByName("fanout_add"), 0,
       ThreadKind::kSyscall},
      {"bind()", image.ProgramByName("packet_do_bind"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"packet_sock_fd", "packet_sock_fd"};

  s.truth.failure_type = FailureType::kAssertViolation;
  s.truth.multi_variable = true;
  s.truth.paper_chain_races = 4;
  s.truth.paper_interleavings = 2;
  s.truth.expected_chain_races = 4;
  s.truth.expected_interleavings = 2;
  s.truth.racing_globals = {"po_running", "po_fanout", "fanout_global_list"};
  s.truth.muvi_assumption_holds = true;  // running/fanout accessed together
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
