// CVE-2017-7533 — inotify event handling races with rename (slab OOB).
//
// rename() replaces a dentry name with a longer one and updates the length
// field; fsnotify reads the buffer pointer and the length without holding
// the rename lock. Reading the *old* (short) buffer with the *new* (long)
// length walks off the end of the allocation:
//
//   A (rename):                        B (inotify handler):
//   A1 newbuf = kmalloc(4);            B1 p = dentry->name;
//   A2 dentry->name = newbuf;          B2 l = dentry->name_len;
//   A3 dentry->name_len = 8;           B3 read p[l-1];     <- OOB
//
// Expected chain: (B1 => A2) --> (A3 => B2) --> slab-out-of-bounds.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2017_7533() {
  BugScenario s;
  s.id = "CVE-2017-7533";
  s.subsystem = "Inotify";
  s.bug_kind = "Slab-out-of-bound access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr name_ptr = image.AddGlobal("dentry_name", 0);
  const Addr name_len = image.AddGlobal("dentry_name_len", 0);
  const Addr ihold = image.AddGlobal("inode_hold_count", 0);

  {
    ProgramBuilder b("dentry_setup");
    b.Alloc(R1, 2)
        .Note("S1: name = kmalloc(2)")
        .Lea(R2, name_ptr)
        .Store(R2, R1)
        .Note("S2: dentry->name = name")
        .Lea(R3, name_len)
        .StoreImm(R3, 2)
        .Note("S3: dentry->name_len = 2")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("rename");
    b.Lea(R8, ihold)
        .Load(R9, R8)
        .Note("A-st: ihold++ (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("A-st': ihold++ (benign)")
        .Alloc(R1, 4)
        .Note("A1: newbuf = kmalloc(4)")
        .Lea(R2, name_ptr)
        .Store(R2, R1)
        .Note("A2: dentry->name = newbuf")
        .Lea(R3, name_len)
        .StoreImm(R3, 4)
        .Note("A3: dentry->name_len = 4")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("fsnotify_handle");
    b.Lea(R1, name_ptr)
        .Load(R2, R1)
        .Note("B1: p = dentry->name")
        .Lea(R3, name_len)
        .Load(R4, R3)
        .Note("B2: l = dentry->name_len")
        .AddImm(R4, R4, -1)
        .Add(R5, R2, R4)
        .Load(R6, R5)
        .Note("B3: copy p[l-1]  <- OOB when old buf, new len")
        .Lea(R8, ihold)
        .Load(R9, R8)
        .Note("B-st: ihold++ (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("B-st': ihold++ (benign)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"open(dir)", image.ProgramByName("dentry_setup"), 0, ThreadKind::kSyscall}};
  s.setup_resources = {"watch_fd"};
  s.slice = {
      {"rename()", image.ProgramByName("rename"), 0, ThreadKind::kSyscall},
      {"inotify_handle_event()", image.ProgramByName("fsnotify_handle"), 0,
       ThreadKind::kSyscall},
  };
  s.slice_resources = {"watch_fd", "watch_fd"};

  s.truth.failure_type = FailureType::kOutOfBounds;
  s.truth.multi_variable = true;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"dentry_name", "dentry_name_len"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
