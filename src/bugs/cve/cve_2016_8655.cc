// CVE-2016-8655 — packet socket: PACKET_VERSION vs PACKET_RX_RING.
//
// packet_set_ring() samples po->tp_version, allocates the ring, and keeps
// using the sampled version, while a concurrent setsockopt(PACKET_VERSION)
// changes it (it only checks that no ring exists *yet*). The two variables
// are correlated: the ring layout must match tp_version.
//
//   A (PACKET_VERSION):                B (PACKET_RX_RING):
//   A1 if (po->rx_ring) return;        B1 v = po->tp_version;
//   A2 po->tp_version = V3;            B2 ring = alloc();
//                                      B3 po->rx_ring = ring;
//                                      B4 v2 = po->tp_version;
//                                      B5 BUG_ON(v2 != v);   // layout mismatch
//
// Expected chain: (A1 => B3) ∧ (B1 => A2) --> (A2 => B4) --> BUG.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2016_8655() {
  BugScenario s;
  s.id = "CVE-2016-8655";
  s.subsystem = "Packet socket";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr tp_version = image.AddGlobal("po_tp_version", 2);
  const Addr rx_ring = image.AddGlobal("po_rx_ring", 0);

  {
    ProgramBuilder b("packet_set_version");
    b.Lea(R1, rx_ring)
        .Load(R2, R1)
        .Note("A1: if (po->rx_ring) return -EBUSY")
        .Bnez(R2, "busy")
        .Lea(R3, tp_version)
        .StoreImm(R3, 3)
        .Note("A2: po->tp_version = TPACKET_V3")
        .Label("busy")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("packet_set_ring");
    b.Lea(R1, tp_version)
        .Load(R2, R1)
        .Note("B1: v = po->tp_version")
        .Alloc(R3, 2)
        .Note("B2: ring = alloc_pg_vec()")
        .Lea(R4, rx_ring)
        .Store(R4, R3)
        .Note("B3: po->rx_ring = ring")
        .Load(R5, R1)
        .Note("B4: v2 = po->tp_version")
        .Bne(R5, R2, "mismatch")
        .Exit()
        .Label("mismatch")
        .MovImm(R6, 0)
        .BugOn(R6)
        .Note("B5: BUG: ring layout does not match tp_version")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"setsockopt(PACKET_VERSION)", image.ProgramByName("packet_set_version"), 0,
       ThreadKind::kSyscall},
      {"setsockopt(PACKET_RX_RING)", image.ProgramByName("packet_set_ring"), 0,
       ThreadKind::kSyscall},
  };
  s.slice_resources = {"packet_fd", "packet_fd"};

  s.truth.failure_type = FailureType::kAssertViolation;
  s.truth.multi_variable = true;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 3;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"po_tp_version", "po_rx_ring"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
