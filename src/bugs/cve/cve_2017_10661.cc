// CVE-2017-10661 — timerfd: concurrent timerfd_settime corrupts the timer
// list (assertion in the hrtimer machinery).
//
// Two settime calls race on cancel-then-rearm of the same timer:
//
//   each thread:  d = list_del(&timer);        // cancel if armed
//                 c = list_contains(&timer);   // must be gone now
//                 if (c) BUG();                // double-arm detected
//                 list_add(&timer);            // rearm
//
// The BUG fires when one thread's rearm (list_add) lands between the other
// thread's cancel and its sanity check.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {
namespace {

void BuildSettime(KernelImage& image, const char* name, const char* tag, Addr timer_list,
                  Addr expiry, Word new_expiry) {
  ProgramBuilder b(name);
  std::string t(tag);
  b.Lea(R1, timer_list)
      .MovImm(R2, 555)  // &ctx->tmr
      .ListDel(R3, R1, R2)
      .Note(t + "1: hrtimer_cancel: list_del(&ctx->tmr)")
      .ListContains(R4, R1, R2)
      .Note(t + "2: sanity: timer must be off the list")
      .Beqz(R4, "arm")
      .MovImm(R5, 0)
      .BugOn(R5)
      .Note(t + "3: BUG: timer already armed")
      .Label("arm")
      .Lea(R6, expiry)
      .MovImm(R7, new_expiry)
      .Store(R6, R7)
      .Note(t + "4: ctx->expiry = new (benign)")
      .ListAdd(R1, R2)
      .Note(t + "5: hrtimer_start: list_add(&ctx->tmr)")
      .Exit();
  image.AddProgram(b.Build());
}

}  // namespace

BugScenario MakeCve2017_10661() {
  BugScenario s;
  s.id = "CVE-2017-10661";
  s.subsystem = "Timer fd";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr timer_list = image.AddGlobal("hrtimer_list", 0);
  const Addr expiry = image.AddGlobal("timerfd_expiry", 0);

  // setup: the timer starts armed (a previous settime).
  {
    ProgramBuilder b("timerfd_setup");
    b.Lea(R1, timer_list)
        .MovImm(R2, 555)
        .ListAdd(R1, R2)
        .Note("S1: initial arm")
        .Exit();
    image.AddProgram(b.Build());
  }
  BuildSettime(image, "timerfd_settime_a", "A", timer_list, expiry, 10);
  BuildSettime(image, "timerfd_settime_b", "B", timer_list, expiry, 20);

  s.setup = {{"timerfd_settime(init)", image.ProgramByName("timerfd_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"timer_fd"};
  s.slice = {
      {"timerfd_settime#1", image.ProgramByName("timerfd_settime_a"), 0, ThreadKind::kSyscall},
      {"timerfd_settime#2", image.ProgramByName("timerfd_settime_b"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"timer_fd", "timer_fd"};

  s.truth.failure_type = FailureType::kAssertViolation;
  s.truth.multi_variable = false;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 1;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"hrtimer_list"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;  // single-list atomicity violation
  return s;
}

}  // namespace aitia
