// CVE-2018-12232 — SockFS: setattr races with close (NULL dereference).
//
// fchownat() on a socket fd dereferences inode->socket while close() tears
// the socket down. The two fields are semantically correlated: sock_alive
// may be 1 only while inode_sock points at a live socket.
//
//   A (fchownat):                      B (close):
//   A1 if (!inode->sock_alive) ret;    B1 inode->sock = NULL;
//   A2 s = inode->sock;                B2 inode->sock_alive = 0;
//   A3 s->owner = uid;       <- NULL
//
// Expected chain: (A1 => B2) --> (B1 => A2) --> null-ptr-deref.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2018_12232() {
  BugScenario s;
  s.id = "CVE-2018-12232";
  s.subsystem = "SockFS";
  s.bug_kind = "NULL pointer dereference";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr inode_sock = image.AddGlobal("inode_sock", 0);
  const Addr sock_alive = image.AddGlobal("inode_sock_alive", 0);
  const Addr inode_ctime = image.AddGlobal("inode_ctime", 100);

  {
    ProgramBuilder b("socket_setup");
    b.Alloc(R1, 2)
        .Note("S1: sock = kmalloc()")
        .Lea(R2, inode_sock)
        .Store(R2, R1)
        .Note("S2: inode->sock = sock")
        .Lea(R3, sock_alive)
        .StoreImm(R3, 1)
        .Note("S3: inode->sock_alive = 1")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("fchownat");
    b.Lea(R1, sock_alive)
        .Load(R2, R1)
        .Note("A1: if (!inode->sock_alive) return")
        .Beqz(R2, "out")
        .Lea(R3, inode_sock)
        .Load(R4, R3)
        .Note("A2: s = inode->sock")
        .StoreImm(R4, 1000, 0)
        .Note("A3: s->owner = uid  <- NULL deref")
        .Lea(R8, inode_ctime)
        .Load(R9, R8)
        .Note("A-st: inode->ctime update (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("A-st': inode->ctime update (benign)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("sock_close");
    b.Lea(R1, inode_sock)
        .Load(R2, R1)
        .Note("B0: s = inode->sock")
        .StoreImm(R1, 0)
        .Note("B1: inode->sock = NULL")
        .Lea(R3, sock_alive)
        .StoreImm(R3, 0)
        .Note("B2: inode->sock_alive = 0")
        .Lea(R8, inode_ctime)
        .Load(R9, R8)
        .Note("B-st: inode->ctime update (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("B-st': inode->ctime update (benign)")
        .Beqz(R2, "out")
        .Free(R2)
        .Note("B3: sock_release(s)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"socket()", image.ProgramByName("socket_setup"), 0, ThreadKind::kSyscall}};
  s.setup_resources = {"sock_fd"};
  s.slice = {
      {"fchownat(sock_fd)", image.ProgramByName("fchownat"), 0, ThreadKind::kSyscall},
      {"close(sock_fd)", image.ProgramByName("sock_close"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"sock_fd", "sock_fd"};

  s.truth.failure_type = FailureType::kNullDeref;
  s.truth.multi_variable = true;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"inode_sock", "inode_sock_alive"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
