// CVE-2019-11486 — Siemens R3964 line discipline race (TTY).
//
// ioctl(TIOCSETD) swaps tty->ldisc to a fresh object and frees the old one
// while a concurrent read() still dereferences the pointer it loaded before
// the swap:
//
//   A (ioctl TIOCSETD):                B (read):
//   A1 old = tty->ldisc;               B1 d = tty->ldisc;
//   A2 tty->ldisc = new_ldisc;         B2 use(d->ops);      <- UAF read
//   A3 kfree(old);
//
// Failure needs B1 => A2 (B grabs the doomed object) and A3 => B2.
// Expected chain: (B1 => A2) --> (A3 => B2) --> UAF read.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeCve2019_11486() {
  BugScenario s;
  s.id = "CVE-2019-11486";
  s.subsystem = "TTY";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr tty_ldisc = image.AddGlobal("tty_ldisc", 0);
  const Addr tty_stats = image.AddGlobal("tty_rx_stats", 0);

  // The boot-time ldisc is installed by a setup syscall so the racing
  // threads start from a realistic state.
  {
    ProgramBuilder b("tty_open_setup");
    b.Alloc(R1, 2)
        .Note("S1: initial ldisc = kmalloc()")
        .StoreImm(R1, 9, 0)
        .Note("S2: ldisc->ops = r3964_ops")
        .Lea(R2, tty_ldisc)
        .Store(R2, R1)
        .Note("S3: tty->ldisc = ldisc")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("tiocsetd");
    b.Lea(R1, tty_ldisc)
        .Load(R2, R1)
        .Note("A1: old = tty->ldisc")
        .Alloc(R3, 2)
        .Note("A1': new_ldisc = kmalloc()")
        .StoreImm(R3, 7, 0)
        .Note("A1'': new_ldisc->ops = n_tty_ops")
        .Store(R1, R3)
        .Note("A2: tty->ldisc = new_ldisc")
        .Free(R2)
        .Note("A3: kfree(old)")
        .Lea(R8, tty_stats)
        .Load(R9, R8)
        .Note("A-st: tty->rx_stats++ (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("A-st': tty->rx_stats++ (benign)")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("tty_read");
    b.Lea(R1, tty_ldisc)
        .Load(R2, R1)
        .Note("B1: d = tty->ldisc")
        .Beqz(R2, "out")
        .Load(R3, R2, 0)
        .Note("B2: use(d->ops)  <- UAF if A3 => B2")
        .Lea(R8, tty_stats)
        .Load(R9, R8)
        .Note("B-st: tty->rx_stats++ (benign)")
        .AddImm(R9, R9, 1)
        .Store(R8, R9)
        .Note("B-st': tty->rx_stats++ (benign)")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"open(/dev/tty)", image.ProgramByName("tty_open_setup"), 0, ThreadKind::kSyscall}};
  s.setup_resources = {"tty_fd"};
  s.slice = {
      {"ioctl(TIOCSETD)", image.ProgramByName("tiocsetd"), 0, ThreadKind::kSyscall},
      {"read(tty)", image.ProgramByName("tty_read"), 0, ThreadKind::kSyscall},
  };
  s.slice_resources = {"tty_fd", "tty_fd"};

  s.truth.failure_type = FailureType::kUseAfterFreeRead;
  s.truth.multi_variable = false;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"tty_ldisc"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;  // single-pointer atomicity violation
  return s;
}

}  // namespace aitia
