// Figure 7: nested and surrounding data races -> ambiguity.
//
//   Thread A: A1 m1 = 1;  A2 m2 = 1;
//   Thread B: B1 r2 = m2; B2 r1 = m1; if (r1 && r2) BUG();
//
// In the failing order A1 => A2 => B1 => B2 both loads observe 1. The race
// A1 => B2 (m1) *surrounds* the nested race A2 => B1 (m2): flipping the
// surrounding order necessarily reverses the nested one, and since flipping
// either avoids the failure, Causality Analysis must report the surrounding
// race as ambiguous (§3.4).

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeFig7() {
  BugScenario s;
  s.id = "fig-7";
  s.subsystem = "abstract";
  s.bug_kind = "Assertion violation";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr m1 = image.AddGlobal("m1", 0);
  const Addr m2 = image.AddGlobal("m2", 0);

  {
    ProgramBuilder b("thread_a");
    b.Lea(R1, m1)
        .StoreImm(R1, 1)
        .Note("A1: m1 = 1")
        .Lea(R2, m2)
        .StoreImm(R2, 1)
        .Note("A2: m2 = 1")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("thread_b");
    b.Lea(R1, m2)
        .Load(R2, R1)
        .Note("B1: r2 = m2")
        .Lea(R3, m1)
        .Load(R4, R3)
        .Note("B2: r1 = m1")
        .Beqz(R2, "ok")
        .Beqz(R4, "ok")
        .MovImm(R5, 0)
        .BugOn(R5)
        .Note("B3: BUG() when r1 && r2")
        .Label("ok")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"syscall_a", image.ProgramByName("thread_a"), 0, ThreadKind::kSyscall},
      {"syscall_b", image.ProgramByName("thread_b"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kAssertViolation;
  s.truth.multi_variable = true;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 0;  // A-then-B sequential order already fails
  s.truth.racing_globals = {"m1", "m2"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  s.truth.expect_ambiguity = true;
  return s;
}

}  // namespace aitia
