// Figure 5: the LIFS search-tree example.
//
//   Thread A: A1(m1) A2(m2) A3(m3-deref)   Thread B: B1(m1) B2(m2) [B3]
//   Thread K: K1(m3) — a kworker queued by B3, which only runs if A1 => B1.
//
// If K1 executes before A3's dereference, A3 faults (NULL deref). The
// failure therefore needs A1 => B1 (race-steered spawn of K) and K1 => A3.
// Expected chain: (A1 => B1) --> (K1 => A3) --> null-ptr-deref.
//
// m2 hosts an extra conflicting pair (A2/B2) that never matters — benign.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeFig5() {
  BugScenario s;
  s.id = "fig-5";
  s.subsystem = "abstract";
  s.bug_kind = "NULL pointer dereference";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr pointee = image.AddGlobal("m3_pointee", 5);
  const Addr m1 = image.AddGlobal("m1_flag", 0);
  const Addr m2 = image.AddGlobal("m2_counter", 0);
  const Addr m3 = image.AddGlobal("m3_ptr", static_cast<Word>(pointee));

  ProgramId worker;
  {
    ProgramBuilder b("kworker_fn");
    b.Lea(R1, m3)
        .StoreImm(R1, 0)
        .Note("K1: m3 = NULL")
        .Exit();
    worker = image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("thread_a");
    b.Lea(R1, m1)
        .StoreImm(R1, 1)
        .Note("A1: m1 = 1")
        .Lea(R2, m2)
        .Load(R3, R2)
        .Note("A2: m2++ (read)")
        .AddImm(R3, R3, 1)
        .Store(R2, R3)
        .Note("A2': m2++ (write)")
        .Lea(R4, m3)
        .Load(R5, R4)
        .Note("A3: p = m3")
        .Load(R6, R5)
        .Note("A3': *p (fails if K1 => A3)")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("thread_b");
    b.Lea(R1, m1)
        .Load(R2, R1)
        .Note("B1: if (m1)")
        .Beqz(R2, "skip_work")
        .MovImm(R5, 0)
        .QueueWork(worker, R5)
        .Note("B3: queue_work(k)")
        .Label("skip_work")
        .Lea(R3, m2)
        .Load(R4, R3)
        .Note("B2: m2++ (read)")
        .AddImm(R4, R4, 1)
        .Store(R3, R4)
        .Note("B2': m2++ (write)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"syscall_a", image.ProgramByName("thread_a"), 0, ThreadKind::kSyscall},
      {"syscall_b", image.ProgramByName("thread_b"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kNullDeref;
  s.truth.multi_variable = true;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"m1_flag", "m3_ptr"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
