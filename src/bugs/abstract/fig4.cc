// Figure 4 — the complex kernel concurrency-bug shapes the paper calls out.
//
// (a) two syscalls + a race-steered kworker is covered by fig-5 / syz-04.
// (b) fig-4b: a *single* syscall whose own deferred work races with it —
//     a kworker reads state the syscall publishes late, and an RCU callback
//     frees the object under the kworker:
//
//       A: o = dev->obj;                  W (kworker): s = o->state;
//          queue_work(W, o);                 if (!s) return;
//          o->state = 1;                     o->data = 5;   <- UAF write
//          call_rcu(R, o);                R (rcu): kfree(o);
//
//     Expected chain: (A3 => W1) --> (W1 => R1) --> (R1 => W2) --> UAF write
//     (the W1/R1 free-order race is itself symptom-preventing: reversing it
//     turns the write into a read-side fault, a different symptom).
//
// (c) fig-4c: three contexts chained over three memory objects, each link
//     race-steered by the previous one:
//
//       A: m1 = 1;                        B: if (m1) { queue_work(K); m2 = 1; }
//          p = m3; *p;                    K: if (m2) m3 = NULL;
//
//     Expected chain: (A1 => B1) --> (B2 => K1) --> (K2 => A2) --> NULL deref.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeFig4b() {
  BugScenario s;
  s.id = "fig-4b";
  s.subsystem = "abstract";
  s.bug_kind = "Use-after-free access";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr dev_obj = image.AddGlobal("dev_obj", 0);

  {
    ProgramBuilder b("fig4b_setup");
    b.Alloc(R1, 2)
        .Note("S1: obj = kmalloc()")
        .Lea(R2, dev_obj)
        .Store(R2, R1)
        .Note("S2: dev->obj = obj")
        .Exit();
    image.AddProgram(b.Build());
  }
  ProgramId rcu_cb;
  {
    ProgramBuilder b("fig4b_rcu_free");
    b.Free(R0)
        .Note("R1: kfree(obj)")
        .Exit();
    rcu_cb = image.AddProgram(b.Build());
  }
  ProgramId worker;
  {
    ProgramBuilder b("fig4b_worker");
    b.Load(R1, R0, 0)
        .Note("W1: s = obj->state")
        .Beqz(R1, "out")
        .StoreImm(R0, 5, 1)
        .Note("W2: obj->data = 5  <- UAF write if R1 => W2")
        .Label("out")
        .Exit();
    worker = image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("fig4b_syscall");
    b.Lea(R1, dev_obj)
        .Load(R2, R1)
        .Note("A1: o = dev->obj")
        .QueueWork(worker, R2)
        .Note("A2: queue_work(W, o)")
        .StoreImm(R2, 1, 0)
        .Note("A3: o->state = 1")
        .CallRcu(rcu_cb, R2)
        .Note("A4: call_rcu(R, o)")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"open(dev)", image.ProgramByName("fig4b_setup"), 0, ThreadKind::kSyscall}};
  s.setup_resources = {"dev_fd"};
  s.slice = {{"ioctl(dev)", image.ProgramByName("fig4b_syscall"), 0, ThreadKind::kSyscall}};
  s.slice_resources = {"dev_fd"};

  s.truth.failure_type = FailureType::kUseAfterFreeWrite;
  s.truth.multi_variable = true;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 3;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"dev_obj"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = false;
  return s;
}

BugScenario MakeFig4c() {
  BugScenario s;
  s.id = "fig-4c";
  s.subsystem = "abstract";
  s.bug_kind = "NULL pointer dereference";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr pointee = image.AddGlobal("fig4c_pointee", 9);
  const Addr m1 = image.AddGlobal("fig4c_m1", 0);
  const Addr m2 = image.AddGlobal("fig4c_m2", 0);
  const Addr m3 = image.AddGlobal("fig4c_m3", static_cast<Word>(pointee));

  ProgramId worker;
  {
    ProgramBuilder b("fig4c_worker");
    b.Lea(R1, m2)
        .Load(R2, R1)
        .Note("K1: if (m2)")
        .Beqz(R2, "out")
        .Lea(R3, m3)
        .StoreImm(R3, 0)
        .Note("K2: m3 = NULL")
        .Label("out")
        .Exit();
    worker = image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("fig4c_thread_a");
    b.Lea(R1, m1)
        .StoreImm(R1, 1)
        .Note("A1: m1 = 1")
        .Lea(R2, m3)
        .Load(R3, R2)
        .Note("A2: p = m3")
        .Load(R4, R3)
        .Note("A3: *p  <- NULL deref when K2 => A2")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("fig4c_thread_b");
    b.Lea(R1, m1)
        .Load(R2, R1)
        .Note("B1: if (m1)")
        .Beqz(R2, "out")
        .MovImm(R3, 0)
        .QueueWork(worker, R3)
        .Note("B1': queue_work(K)")
        .Lea(R4, m2)
        .StoreImm(R4, 1)
        .Note("B2: m2 = 1")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"syscall_a", image.ProgramByName("fig4c_thread_a"), 0, ThreadKind::kSyscall},
      {"syscall_b", image.ProgramByName("fig4c_thread_b"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kNullDeref;
  s.truth.multi_variable = true;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 3;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"fig4c_m1", "fig4c_m2", "fig4c_m3"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
