// ext-irq — hardware-IRQ context diagnosis (the paper's §4.6 future work).
//
// The paper's stated limitation: "AITIA does not implement cases in which
// concurrency bugs occur in hardware IRQ contexts ... we believe AITIA is
// able to diagnose such concurrent bugs if the AITIA hypervisor injects an
// IRQ through the VT-x mechanism". This scenario exercises exactly that
// extension: LIFS injects a serial-console RX interrupt at scheduling
// points of a single syscall.
//
//   A (ioctl TCFLSH):                  H (serial RX hardirq):
//   A1 b = tty->rx_buf;                H1 b = tty->rx_buf;
//      if (!b) return;                    if (!b) return;
//   A2 kfree(b);                       H2 read b[0];      <- UAF read
//   A3 tty->rx_buf = NULL;
//
// The failure needs the IRQ to land between A2 and A3. Expected chain:
// (H1 => A3) --> (A2 => H2) --> UAF read.

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeExtIrqSerialUaf() {
  BugScenario s;
  s.id = "ext-irq";
  s.subsystem = "Serial TTY";
  s.bug_kind = "Use-after-free access (hardirq)";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr rx_buf = image.AddGlobal("tty_rx_buf", 0);

  {
    ProgramBuilder b("serial_setup");
    b.Alloc(R1, 2)
        .Note("S1: rx_buf = kmalloc()")
        .Lea(R2, rx_buf)
        .Store(R2, R1)
        .Note("S2: tty->rx_buf = rx_buf")
        .Exit();
    image.AddProgram(b.Build());
  }
  ProgramId handler;
  {
    ProgramBuilder b("serial_rx_irq");
    b.Lea(R1, rx_buf)
        .Load(R2, R1)
        .Note("H1: b = tty->rx_buf")
        .Beqz(R2, "out")
        .Load(R3, R2, 0)
        .Note("H2: read b[0]  <- UAF when the IRQ lands mid-flush")
        .Label("out")
        .Exit();
    handler = image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("tty_flush");
    b.Lea(R1, rx_buf)
        .Load(R2, R1)
        .Note("A1: b = tty->rx_buf")
        .Beqz(R2, "out")
        .Free(R2)
        .Note("A2: kfree(b)")
        .StoreImm(R1, 0)
        .Note("A3: tty->rx_buf = NULL")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.setup = {{"open(/dev/ttyS0)", image.ProgramByName("serial_setup"), 0,
              ThreadKind::kSyscall}};
  s.setup_resources = {"tty_fd"};
  s.slice = {{"ioctl(TCFLSH)", image.ProgramByName("tty_flush"), 0, ThreadKind::kSyscall}};
  s.slice_resources = {"tty_fd"};
  s.irq_lines = {{handler, 0}};

  s.truth.failure_type = FailureType::kUseAfterFreeRead;
  s.truth.multi_variable = false;
  s.truth.paper_chain_races = 0;  // not in the paper's tables (future work)
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"tty_rx_buf"};
  s.truth.muvi_assumption_holds = false;
  s.truth.single_variable_pattern = true;
  return s;
}

}  // namespace aitia
