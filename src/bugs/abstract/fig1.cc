// Figure 1: the abstract two-variable concurrency failure.
//
//   Thread A                     Thread B
//   A1  ptr_valid = 1;           B1  if (ptr_valid == 0) return;
//   A2  local = *ptr;            B2  ptr = NULL;
//
// Initial: ptr_valid = 0, ptr -> pointee. The failure (NULL deref at A2)
// requires A1 => B1 (so B survives its check) and B2 => A2. Expected chain:
// (A1 => B1) --> (B2 => A2) --> null-ptr-deref.
//
// Both threads also bump a shared statistics counter — an intentional benign
// race Causality Analysis must exclude (§2.3).

#include "src/bugs/registry.h"
#include "src/sim/builder.h"

namespace aitia {

BugScenario MakeFig1() {
  BugScenario s;
  s.id = "fig-1";
  s.subsystem = "abstract";
  s.bug_kind = "NULL pointer dereference";
  s.image = std::make_shared<KernelImage>();

  KernelImage& image = *s.image;
  const Addr pointee = image.AddGlobal("pointee", 42);
  const Addr ptr = image.AddGlobal("ptr", static_cast<Word>(pointee));
  const Addr ptr_valid = image.AddGlobal("ptr_valid", 0);
  const Addr stat = image.AddGlobal("stat_counter", 0);

  {
    ProgramBuilder b("thread_a");
    b.Lea(R4, stat)
        .Load(R5, R4)
        .Note("A0: stats->ops++ (benign)")
        .AddImm(R5, R5, 1)
        .Store(R4, R5)
        .Note("A0': stats->ops++ (benign)")
        .Lea(R1, ptr_valid)
        .StoreImm(R1, 1)
        .Note("A1: ptr_valid = 1")
        .Lea(R2, ptr)
        .Load(R3, R2)
        .Note("A2: local = *ptr (read ptr)")
        .Load(R3, R3)
        .Note("A2': local = *ptr (deref)")
        .Exit();
    image.AddProgram(b.Build());
  }
  {
    ProgramBuilder b("thread_b");
    b.Lea(R4, stat)
        .Load(R5, R4)
        .Note("B0: stats->ops++ (benign)")
        .AddImm(R5, R5, 1)
        .Store(R4, R5)
        .Note("B0': stats->ops++ (benign)")
        .Lea(R1, ptr_valid)
        .Load(R2, R1)
        .Note("B1: if (ptr_valid == 0) return")
        .Beqz(R2, "out")
        .Lea(R3, ptr)
        .StoreImm(R3, 0)
        .Note("B2: ptr = NULL")
        .Label("out")
        .Exit();
    image.AddProgram(b.Build());
  }

  s.slice = {
      {"syscall_a", image.ProgramByName("thread_a"), 0, ThreadKind::kSyscall},
      {"syscall_b", image.ProgramByName("thread_b"), 0, ThreadKind::kSyscall},
  };

  s.truth.failure_type = FailureType::kNullDeref;
  s.truth.multi_variable = true;
  s.truth.paper_chain_races = 2;
  s.truth.paper_interleavings = 1;
  s.truth.expected_chain_races = 2;
  s.truth.expected_interleavings = 1;
  s.truth.racing_globals = {"ptr", "ptr_valid"};
  s.truth.muvi_assumption_holds = true;
  s.truth.single_variable_pattern = false;
  return s;
}

}  // namespace aitia
