// Convenience wrapper: diagnose a bundled scenario with its ground-truth
// symptom type and IRQ lines applied to the options.

#ifndef SRC_BUGS_DIAGNOSE_H_
#define SRC_BUGS_DIAGNOSE_H_

#include "src/bugs/scenario.h"
#include "src/core/aitia.h"

namespace aitia {

AitiaReport DiagnoseScenario(const BugScenario& scenario, AitiaOptions options = {});

}  // namespace aitia

#endif  // SRC_BUGS_DIAGNOSE_H_
