// Registry of every modeled bug (Tables 2/3 and the abstract figures).

#ifndef SRC_BUGS_REGISTRY_H_
#define SRC_BUGS_REGISTRY_H_

#include <string>
#include <vector>

#include "src/bugs/scenario.h"

namespace aitia {

using ScenarioFactory = BugScenario (*)();

struct ScenarioEntry {
  const char* id;
  ScenarioFactory make;
};

// All registered scenarios, in the order of the paper's tables: Table 2
// CVEs, Table 3 syzkaller bugs, then the abstract figures.
const std::vector<ScenarioEntry>& AllScenarios();

// Scenarios belonging to Table 2 / Table 3 (prefix-based subsets).
std::vector<ScenarioEntry> Table2Scenarios();
std::vector<ScenarioEntry> Table3Scenarios();

// Builds a scenario by id; aborts on unknown id.
BugScenario MakeScenario(const std::string& id);

// Non-aborting lookup; nullptr on unknown id (for CLI / service frontends).
const ScenarioEntry* FindScenario(const std::string& id);

// --- individual scenario factories ------------------------------------------
// Abstract figures.
BugScenario MakeFig1();        // two-variable NULL deref (Figure 1)
BugScenario MakeFig5();        // LIFS search-tree example (Figure 5)
BugScenario MakeFig7();        // nested/surrounding ambiguity (Figure 7)
BugScenario MakeExtIrqSerialUaf();  // hardware-IRQ injection (§4.6 extension)
BugScenario MakeFig4b();       // single syscall vs its own kworker + RCU (Fig. 4b)
BugScenario MakeFig4c();       // three contexts chained over three objects (Fig. 4c)

// Table 2: CVEs.
BugScenario MakeCve2019_11486();
BugScenario MakeCve2019_6974();
BugScenario MakeCve2018_12232();
BugScenario MakeCve2017_15649();
BugScenario MakeCve2017_10661();
BugScenario MakeCve2017_7533();
BugScenario MakeCve2017_2671();
BugScenario MakeCve2017_2636();
BugScenario MakeCve2016_10200();
BugScenario MakeCve2016_8655();

// Table 3: syzkaller-reported bugs.
BugScenario MakeSyz01L2tpOob();
BugScenario MakeSyz02PacketAssert();
BugScenario MakeSyz03Pppol2tpUaf();
BugScenario MakeSyz04KvmIrqfdUaf();   // Figure 9
BugScenario MakeSyz05RxrpcUaf();
BugScenario MakeSyz06BpfGpf();
BugScenario MakeSyz07BlockUaf();
BugScenario MakeSyz08CanJ1939Refcount();
BugScenario MakeSyz09SeccompLeak();
BugScenario MakeSyz10MdAssert();
BugScenario MakeSyz11FloppyAssert();
BugScenario MakeSyz12BluetoothScoUaf();

}  // namespace aitia

#endif  // SRC_BUGS_REGISTRY_H_
