#include "src/ingest/ingest.h"

#include <fstream>
#include <sstream>

namespace aitia {

StatusOr<BugScenario> ScenarioFromAitText(std::string_view text, const std::string& filename) {
  StatusOr<TraceDoc> doc = ParseTraceText(text, filename);
  if (!doc.ok()) {
    return doc.status();
  }
  return AssembleScenario(*doc);
}

StatusOr<BugScenario> ScenarioFromAitFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot read trace file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::Unavailable("I/O error reading trace file: " + path);
  }
  return ScenarioFromAitText(buffer.str(), path);
}

}  // namespace aitia
