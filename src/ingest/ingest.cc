#include "src/ingest/ingest.h"

#include <fstream>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/stopwatch.h"

namespace aitia {
namespace {

struct IngestMetrics {
  obs::Counter* files;
  obs::Counter* parses;
  obs::Counter* errors;
  obs::Counter* parse_us;
  obs::Counter* assemble_us;

  static const IngestMetrics& Get() {
    static const IngestMetrics* const m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* im = new IngestMetrics();
      im->files = reg.GetCounter("ingest.files");
      im->parses = reg.GetCounter("ingest.parses");
      im->errors = reg.GetCounter("ingest.errors");
      im->parse_us = reg.GetCounter("ingest.parse_us");
      im->assemble_us = reg.GetCounter("ingest.assemble_us");
      return im;
    }();
    return *m;
  }
};

}  // namespace

StatusOr<BugScenario> ScenarioFromAitText(std::string_view text, const std::string& filename) {
  const IngestMetrics& m = IngestMetrics::Get();
  m.parses->Increment();

  Stopwatch watch;
  StatusOr<TraceDoc> doc = [&] {
    obs::Span span("ingest", "ingest.parse");
    span.Arg("file", filename).Arg("bytes", static_cast<int64_t>(text.size()));
    StatusOr<TraceDoc> parsed = ParseTraceText(text, filename);
    span.Arg("ok", parsed.ok());
    return parsed;
  }();
  m.parse_us->Add(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
  if (!doc.ok()) {
    m.errors->Increment();
    return doc.status();
  }

  watch.Reset();
  StatusOr<BugScenario> scenario = [&] {
    obs::Span span("ingest", "ingest.assemble");
    span.Arg("file", filename);
    StatusOr<BugScenario> assembled = AssembleScenario(*doc);
    span.Arg("ok", assembled.ok());
    return assembled;
  }();
  m.assemble_us->Add(static_cast<int64_t>(watch.ElapsedSeconds() * 1e6));
  if (!scenario.ok()) {
    m.errors->Increment();
  }
  return scenario;
}

StatusOr<BugScenario> ScenarioFromAitFile(const std::string& path) {
  IngestMetrics::Get().files->Increment();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    IngestMetrics::Get().errors->Increment();
    return Status::NotFound("cannot read trace file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    IngestMetrics::Get().errors->Increment();
    return Status::Unavailable("I/O error reading trace file: " + path);
  }
  return ScenarioFromAitText(buffer.str(), path);
}

}  // namespace aitia
