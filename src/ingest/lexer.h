// Line lexer for the .ait trace language.
//
// The format is line-oriented: the lexer turns one physical line into a
// token vector with 1-based column positions, so every parse diagnostic can
// say exactly where it happened. `#` starts a comment that runs to the end
// of the line.

#ifndef SRC_INGEST_LEXER_H_
#define SRC_INGEST_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/sim/types.h"
#include "src/util/status.h"

namespace aitia {

// A position in the source text (both 1-based).
struct SourcePos {
  int line = 1;
  int col = 1;
};

enum class TokenKind {
  kIdent,   // fanout_add, r3, syscall, L7 ...
  kInt,     // 42, -1, 0x1f
  kString,  // "bind()" with \" \\ \n \r \t escapes
  kComma,   // ,
  kAmp,     // & (global-address initializer: &pointee)
};

struct Token {
  TokenKind kind = TokenKind::kIdent;
  std::string text;  // identifier / decoded string contents
  Word value = 0;    // integer value for kInt
  SourcePos pos;
};

// Tokenizes one line (`line_no` is 1-based). On lex errors (unterminated
// string, bad escape, malformed number, stray character) returns
// kInvalidArgument with "<line>:<col>: message"; `out` holds the tokens
// lexed so far.
Status TokenizeLine(std::string_view line, int line_no, std::vector<Token>* out);

}  // namespace aitia

#endif  // SRC_INGEST_LEXER_H_
