#include "src/ingest/syntax.h"

#include <cctype>
#include <cstring>

#include "src/util/strings.h"

namespace aitia {

const MnemonicInfo* AllMnemonics() {
  static const MnemonicInfo kTable[] = {
      {"label", "L", Op::kNop, true},
      {"nop", "", Op::kNop, false},
      {"resched", "", Op::kResched, false},
      {"tlb_flush", "", Op::kTlbFlush, false},
      {"mov_imm", "di", Op::kMovImm, false},
      {"mov", "ds", Op::kMov, false},
      {"add_imm", "dsi", Op::kAddImm, false},
      {"add", "dst", Op::kAdd, false},
      {"sub", "dst", Op::kSub, false},
      {"lea", "dG", Op::kLea, false},
      {"load", "dso", Op::kLoad, false},
      {"store", "dso", Op::kStore, false},
      {"store_imm", "dIo", Op::kStoreImm, false},
      {"beqz", "sL", Op::kBeqz, false},
      {"bnez", "sL", Op::kBnez, false},
      {"beq", "stL", Op::kBeq, false},
      {"bne", "stL", Op::kBne, false},
      {"jmp", "L", Op::kJmp, false},
      {"call", "L", Op::kCall, false},
      {"ret", "", Op::kRet, false},
      {"exit", "", Op::kExit, false},
      {"alloc", "diK", Op::kAlloc, false},
      {"free", "s", Op::kFree, false},
      {"lock", "so", Op::kLock, false},
      {"unlock", "so", Op::kUnlock, false},
      {"bug_on", "s", Op::kAssert, false},
      {"warn_on", "s", Op::kAssert, false},
      {"queue_work", "Ps", Op::kQueueWork, false},
      {"call_rcu", "Ps", Op::kCallRcu, false},
      {"list_add", "sto", Op::kListAdd, false},
      {"list_del", "dsto", Op::kListDel, false},
      {"list_contains", "dsto", Op::kListContains, false},
      {"list_pop", "dso", Op::kListPop, false},
      {"list_len", "dso", Op::kListLen, false},
      {"ref_get", "so", Op::kRefGet, false},
      {"ref_put", "dso", Op::kRefPut, false},
      {nullptr, nullptr, Op::kNop, false},
  };
  return kTable;
}

const MnemonicInfo* FindMnemonic(std::string_view name) {
  for (const MnemonicInfo* m = AllMnemonics(); m->name != nullptr; ++m) {
    if (name == m->name) {
      return m;
    }
  }
  return nullptr;
}

const MnemonicInfo* MnemonicFor(const Instr& instr) {
  if (instr.op == Op::kAssert) {
    return FindMnemonic(instr.imm2 != 0 ? "warn_on" : "bug_on");
  }
  for (const MnemonicInfo* m = AllMnemonics(); m->name != nullptr; ++m) {
    if (!m->is_label && m->op == instr.op) {
      return m;
    }
  }
  return nullptr;
}

const char* FailureTypeToken(FailureType type) {
  switch (type) {
    case FailureType::kNone: return "none";
    case FailureType::kNullDeref: return "null-deref";
    case FailureType::kGeneralProtection: return "gpf";
    case FailureType::kUseAfterFreeRead: return "uaf-read";
    case FailureType::kUseAfterFreeWrite: return "uaf-write";
    case FailureType::kOutOfBounds: return "oob";
    case FailureType::kDoubleFree: return "double-free";
    case FailureType::kBadFree: return "bad-free";
    case FailureType::kAssertViolation: return "assert";
    case FailureType::kWarning: return "warning";
    case FailureType::kRefcountWarning: return "refcount";
    case FailureType::kMemoryLeak: return "leak";
    case FailureType::kDeadlock: return "deadlock";
    case FailureType::kWatchdog: return "watchdog";
  }
  return "?";
}

bool ParseFailureTypeToken(std::string_view token, FailureType* out) {
  static constexpr FailureType kAll[] = {
      FailureType::kNone,          FailureType::kNullDeref,
      FailureType::kGeneralProtection, FailureType::kUseAfterFreeRead,
      FailureType::kUseAfterFreeWrite, FailureType::kOutOfBounds,
      FailureType::kDoubleFree,    FailureType::kBadFree,
      FailureType::kAssertViolation,   FailureType::kWarning,
      FailureType::kRefcountWarning,   FailureType::kMemoryLeak,
      FailureType::kDeadlock,      FailureType::kWatchdog,
  };
  for (FailureType type : kAll) {
    if (token == FailureTypeToken(type)) {
      *out = type;
      return true;
    }
  }
  return false;
}

bool ParseThreadKindToken(std::string_view token, ThreadKind* out) {
  static constexpr ThreadKind kAll[] = {ThreadKind::kSyscall, ThreadKind::kKworker,
                                        ThreadKind::kRcuCallback, ThreadKind::kHardIrq};
  for (ThreadKind kind : kAll) {
    if (token == ThreadKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseRegToken(std::string_view token, Reg* out) {
  if (token.size() < 2 || token.size() > 3 || token[0] != 'r') {
    return false;
  }
  int value = 0;
  for (size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) {
      return false;
    }
    value = value * 10 + (token[i] - '0');
  }
  if (token.size() == 3 && token[1] == '0') {
    return false;  // no leading zeros (r01)
  }
  if (value >= kNumRegs) {
    return false;
  }
  *out = static_cast<Reg>(value);
  return true;
}

std::string RegToken(uint8_t reg) { return StrFormat("r%d", reg); }

bool IsBareName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  const unsigned char first = static_cast<unsigned char>(name[0]);
  if (!std::isalpha(first) && first != '_') {
    return false;
  }
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_' && c != '.' && c != '-') {
      return false;
    }
  }
  // A bare name must not collide with clause keywords that can follow it.
  return name != "note" && name != "arg" && name != "kind" && name != "resource" &&
         name != "leak";
}

std::string QuoteString(const std::string& raw) {
  std::string out = "\"";
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string QuoteName(const std::string& name) {
  return IsBareName(name) ? name : QuoteString(name);
}

}  // namespace aitia
