#include "src/ingest/assemble.h"

#include <map>
#include <memory>
#include <set>
#include <utility>

#include "src/sim/builder.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

Status DocError(const TraceDoc& doc, SourcePos pos, const std::string& message) {
  return Status::InvalidArgument(StrFormat("%s:%d:%d: %s", doc.filename.c_str(), pos.line,
                                           pos.col, message.c_str()));
}

// Re-checks label discipline so AssembleScenario never trips ProgramBuilder's
// aborts, even on a hand-constructed TraceDoc that skipped the parser.
Status ValidateLabels(const TraceDoc& doc, const AitProgram& prog) {
  std::set<std::string> defined;
  for (const AitInstr& item : prog.items) {
    if (item.info->is_label && !defined.insert(item.sym).second) {
      return DocError(doc, item.sym_pos,
                      StrFormat("duplicate label '%s' in program '%s'", item.sym.c_str(),
                                prog.name.c_str()));
    }
  }
  for (const AitInstr& item : prog.items) {
    if (item.info->is_label) {
      continue;
    }
    if (std::string_view(item.info->signature).find('L') != std::string_view::npos &&
        defined.count(item.sym) == 0) {
      return DocError(doc, item.sym_pos,
                      StrFormat("undefined label '%s' in program '%s'", item.sym.c_str(),
                                prog.name.c_str()));
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<BugScenario> AssembleScenario(const TraceDoc& doc) {
  // Addresses and ProgramIds are assigned in declaration order — the same
  // rule KernelImage uses — so every name can be resolved up front and
  // forward references (a syscall queueing a later-defined worker) work.
  std::map<std::string, Addr> global_addr;
  for (size_t i = 0; i < doc.globals.size(); ++i) {
    global_addr[doc.globals[i].name] = kGlobalBase + static_cast<Addr>(i);
  }
  std::map<std::string, ProgramId> program_id;
  for (size_t i = 0; i < doc.programs.size(); ++i) {
    program_id[doc.programs[i].name] = static_cast<ProgramId>(i);
  }

  BugScenario scenario;
  scenario.id = doc.scenario_id;
  scenario.subsystem = doc.subsystem;
  scenario.bug_kind = doc.bug_kind;
  scenario.image = std::make_shared<KernelImage>();
  KernelImage& image = *scenario.image;

  for (const AitGlobal& g : doc.globals) {
    Word init = g.init;
    if (!g.init_ref.empty()) {
      auto it = global_addr.find(g.init_ref);
      if (it == global_addr.end()) {
        return DocError(doc, g.init_pos,
                        StrFormat("unknown global '%s' in '&' initializer", g.init_ref.c_str()));
      }
      init = static_cast<Word>(it->second);
    }
    image.AddGlobal(g.name, init);
  }

  for (const AitProgram& prog : doc.programs) {
    Status s = ValidateLabels(doc, prog);
    if (!s.ok()) {
      return s;
    }
    ProgramBuilder b(prog.name);
    for (const AitInstr& it : prog.items) {
      if (it.info->is_label) {
        if (!it.note.empty()) {
          return DocError(doc, it.pos, "a 'label' line cannot carry a note");
        }
        b.Label(it.sym);
        continue;
      }
      const Reg rd = static_cast<Reg>(it.rd);
      const Reg rs = static_cast<Reg>(it.rs);
      const Reg rt = static_cast<Reg>(it.rt);
      switch (it.info->op) {
        case Op::kNop: b.Nop(); break;
        case Op::kResched: b.Resched(); break;
        case Op::kTlbFlush: b.TlbFlush(); break;
        case Op::kMovImm: b.MovImm(rd, it.imm); break;
        case Op::kMov: b.Mov(rd, rs); break;
        case Op::kAddImm: b.AddImm(rd, rs, it.imm); break;
        case Op::kAdd: b.Add(rd, rs, rt); break;
        case Op::kSub: b.Sub(rd, rs, rt); break;
        case Op::kLea: {
          Addr addr = static_cast<Addr>(it.imm);
          if (!it.sym_is_number) {
            auto found = global_addr.find(it.sym);
            if (found == global_addr.end()) {
              return DocError(doc, it.sym_pos,
                              StrFormat("unknown global '%s'", it.sym.c_str()));
            }
            addr = found->second;
          }
          b.Lea(rd, addr);
          break;
        }
        case Op::kLoad: b.Load(rd, rs, it.off); break;
        case Op::kStore: b.Store(rd, rs, it.off); break;
        case Op::kStoreImm: b.StoreImm(rd, it.imm2, it.off); break;
        case Op::kBeqz: b.Beqz(rs, it.sym); break;
        case Op::kBnez: b.Bnez(rs, it.sym); break;
        case Op::kBeq: b.Beq(rs, rt, it.sym); break;
        case Op::kBne: b.Bne(rs, rt, it.sym); break;
        case Op::kJmp: b.Jmp(it.sym); break;
        case Op::kCall: b.Call(it.sym); break;
        case Op::kRet: b.Ret(); break;
        case Op::kExit: b.Exit(); break;
        case Op::kAlloc: b.Alloc(rd, it.imm, it.leak); break;
        case Op::kFree: b.Free(rs); break;
        case Op::kLock: b.Lock(rs, it.off); break;
        case Op::kUnlock: b.Unlock(rs, it.off); break;
        case Op::kAssert:
          if (it.info->name[0] == 'w') {
            b.WarnOn(rs);
          } else {
            b.BugOn(rs);
          }
          break;
        case Op::kQueueWork:
        case Op::kCallRcu: {
          auto found = program_id.find(it.sym);
          if (found == program_id.end()) {
            return DocError(doc, it.sym_pos,
                            StrFormat("unknown program '%s'", it.sym.c_str()));
          }
          if (it.info->op == Op::kQueueWork) {
            b.QueueWork(found->second, rs);
          } else {
            b.CallRcu(found->second, rs);
          }
          break;
        }
        case Op::kListAdd: b.ListAdd(rs, rt, it.off); break;
        case Op::kListDel: b.ListDel(rd, rs, rt, it.off); break;
        case Op::kListContains: b.ListContains(rd, rs, rt, it.off); break;
        case Op::kListPop: b.ListPop(rd, rs, it.off); break;
        case Op::kListLen: b.ListLen(rd, rs, it.off); break;
        case Op::kRefGet: b.RefGet(rs, it.off); break;
        case Op::kRefPut: b.RefPut(rd, rs, it.off); break;
      }
      if (!it.note.empty()) {
        b.Note(it.note);
      }
    }
    image.AddProgram(b.Build());
  }

  // Thread sections. A section's resource vector is emitted only when some
  // thread in it carries a tag (matching the corpus convention of leaving
  // the parallel vector empty when unused).
  auto section_has_resource = [&](AitSection section) {
    for (const AitThread& t : doc.threads) {
      if (t.section == section && t.has_resource) {
        return true;
      }
    }
    return false;
  };
  const bool slice_tagged = section_has_resource(AitSection::kSlice);
  const bool setup_tagged = section_has_resource(AitSection::kSetup);
  for (const AitThread& t : doc.threads) {
    auto found = program_id.find(t.program);
    if (found == program_id.end()) {
      return DocError(doc, t.program_pos,
                      StrFormat("unknown program '%s'", t.program.c_str()));
    }
    ThreadSpec spec{t.name, found->second, t.arg, t.kind};
    switch (t.section) {
      case AitSection::kSlice:
        scenario.slice.push_back(std::move(spec));
        if (slice_tagged) {
          scenario.slice_resources.push_back(t.resource);
        }
        break;
      case AitSection::kSetup:
        scenario.setup.push_back(std::move(spec));
        if (setup_tagged) {
          scenario.setup_resources.push_back(t.resource);
        }
        break;
      case AitSection::kNoise:
        scenario.noise.push_back(std::move(spec));
        break;
    }
  }
  if (scenario.slice.empty()) {
    return Status::InvalidArgument(doc.filename +
                                   ": scenario declares no 'slice' threads to diagnose");
  }

  for (const AitIrq& irq : doc.irqs) {
    auto found = program_id.find(irq.handler);
    if (found == program_id.end()) {
      return DocError(doc, irq.handler_pos,
                      StrFormat("unknown program '%s'", irq.handler.c_str()));
    }
    scenario.irq_lines.push_back({found->second, irq.arg});
  }

  scenario.truth = doc.truth;
  for (size_t i = 0; i < doc.truth.racing_globals.size(); ++i) {
    if (global_addr.count(doc.truth.racing_globals[i]) == 0) {
      const SourcePos pos =
          i < doc.racing_global_pos.size() ? doc.racing_global_pos[i] : SourcePos{};
      return DocError(doc, pos,
                      StrFormat("unknown global '%s' in truth racing_globals",
                                doc.truth.racing_globals[i].c_str()));
    }
  }
  return scenario;
}

}  // namespace aitia
