#include "src/ingest/serialize.h"

#include <set>
#include <string_view>

#include "src/ingest/syntax.h"
#include "src/util/strings.h"

namespace aitia {
namespace {

std::string LabelName(Pc pc) { return StrFormat("L%d", pc); }

bool IsBranch(Op op) {
  return op == Op::kBeqz || op == Op::kBnez || op == Op::kBeq || op == Op::kBne ||
         op == Op::kJmp || op == Op::kCall;
}

void EmitProgram(const KernelImage& image, const Program& prog, std::string* out) {
  std::set<Pc> targets;
  for (const Instr& instr : prog.code) {
    if (IsBranch(instr.op)) {
      targets.insert(static_cast<Pc>(instr.imm));
    }
  }
  *out += "program " + QuoteName(prog.name) + "\n";
  for (Pc pc = 0; pc < prog.size(); ++pc) {
    if (targets.count(pc) != 0) {
      *out += "  label " + LabelName(pc) + "\n";
    }
    const Instr& instr = prog.At(pc);
    const MnemonicInfo* info = MnemonicFor(instr);
    std::string line = "  ";
    line += info->name;
    bool first = true;
    for (const char* sig = info->signature; *sig != '\0'; ++sig) {
      std::string operand;
      switch (*sig) {
        case 'd': operand = RegToken(instr.rd); break;
        case 's': operand = RegToken(instr.rs); break;
        case 't': operand = RegToken(instr.rt); break;
        case 'i': operand = StrFormat("%lld", static_cast<long long>(instr.imm)); break;
        case 'I': operand = StrFormat("%lld", static_cast<long long>(instr.imm2)); break;
        case 'o':
          if (instr.imm == 0) {
            continue;  // default offset elided
          }
          operand = StrFormat("%lld", static_cast<long long>(instr.imm));
          break;
        case 'K':
          if (instr.imm2 == 0) {
            continue;
          }
          operand = "leak";
          break;
        case 'G': {
          const std::string name = image.GlobalName(static_cast<Addr>(instr.imm));
          operand = name.empty()
                        ? StrFormat("%lld", static_cast<long long>(instr.imm))
                        : QuoteName(name);
          break;
        }
        case 'L': operand = LabelName(static_cast<Pc>(instr.imm)); break;
        case 'P': {
          const auto id = static_cast<size_t>(instr.imm);
          operand = id < image.programs().size()
                        ? QuoteName(image.programs()[id].name)
                        : StrFormat("%lld", static_cast<long long>(instr.imm));
          break;
        }
        default: continue;
      }
      line += first ? " " : ", ";
      line += operand;
      first = false;
    }
    if (!instr.note.empty()) {
      line += " note " + QuoteString(instr.note);
    }
    *out += line + "\n";
  }
  // Branches may legally target one past the last instruction (the implicit
  // fall-off point); re-parsing restores it via the auto-appended exit.
  if (targets.count(prog.size()) != 0) {
    *out += "  label " + LabelName(prog.size()) + "\n";
  }
  *out += "end\n";
}

void EmitThreads(const char* section, const std::vector<ThreadSpec>& threads,
                 const std::vector<std::string>& resources, std::string* out,
                 const KernelImage& image) {
  for (size_t i = 0; i < threads.size(); ++i) {
    const ThreadSpec& t = threads[i];
    std::string line = section;
    line += " " + QuoteName(t.name);
    const auto id = static_cast<size_t>(t.prog);
    line += " " + (id < image.programs().size()
                       ? QuoteName(image.programs()[id].name)
                       : StrFormat("%lld", static_cast<long long>(t.prog)));
    if (t.arg != 0) {
      line += StrFormat(" arg %lld", static_cast<long long>(t.arg));
    }
    if (t.kind != ThreadKind::kSyscall) {
      line += std::string(" kind ") + ThreadKindName(t.kind);
    }
    if (i < resources.size() && !resources[i].empty()) {
      line += " resource " + QuoteString(resources[i]);
    }
    *out += line + "\n";
  }
}

const char* Bool(bool value) { return value ? "true" : "false"; }

}  // namespace

std::string ScenarioToAit(const BugScenario& scenario) {
  const KernelImage& image = *scenario.image;
  std::string out;
  out += StrFormat("# %s — AITIA trace\n", scenario.id.c_str());
  out += StrFormat("ait %d\n\n", kAitVersion);
  out += "scenario " + QuoteName(scenario.id) + "\n";
  if (!scenario.subsystem.empty()) {
    out += "subsystem " + QuoteString(scenario.subsystem) + "\n";
  }
  if (!scenario.bug_kind.empty()) {
    out += "bug_kind " + QuoteString(scenario.bug_kind) + "\n";
  }

  if (!image.globals().empty()) {
    out += "\n";
  }
  for (const GlobalVar& g : image.globals()) {
    // An initial value that is another global's address round-trips by name.
    std::string ref;
    for (const GlobalVar& other : image.globals()) {
      if (g.init != 0 && static_cast<Addr>(g.init) == other.addr) {
        ref = other.name;
        break;
      }
    }
    if (ref.empty()) {
      out += StrFormat("global %s %lld\n", QuoteName(g.name).c_str(),
                       static_cast<long long>(g.init));
    } else {
      out += "global " + QuoteName(g.name) + " &" + QuoteName(ref) + "\n";
    }
  }

  for (const Program& prog : image.programs()) {
    out += "\n";
    EmitProgram(image, prog, &out);
  }

  out += "\n";
  EmitThreads("setup", scenario.setup, scenario.setup_resources, &out, image);
  EmitThreads("slice", scenario.slice, scenario.slice_resources, &out, image);
  EmitThreads("noise", scenario.noise, {}, &out, image);
  for (const IrqLine& irq : scenario.irq_lines) {
    const auto id = static_cast<size_t>(irq.handler);
    std::string handler = id < image.programs().size()
                              ? QuoteName(image.programs()[id].name)
                              : StrFormat("%d", irq.handler);
    out += "irq " + handler;
    if (irq.arg != 0) {
      out += StrFormat(" arg %lld", static_cast<long long>(irq.arg));
    }
    out += "\n";
  }

  const GroundTruth& t = scenario.truth;
  out += "\n";
  out += StrFormat("truth failure %s\n", FailureTypeToken(t.failure_type));
  out += StrFormat("truth multi_variable %s\n", Bool(t.multi_variable));
  out += StrFormat("truth loosely_correlated %s\n", Bool(t.loosely_correlated));
  out += StrFormat("truth paper_chain_races %d\n", t.paper_chain_races);
  out += StrFormat("truth paper_interleavings %d\n", t.paper_interleavings);
  out += StrFormat("truth expected_chain_races %d\n", t.expected_chain_races);
  out += StrFormat("truth expected_interleavings %d\n", t.expected_interleavings);
  if (!t.racing_globals.empty()) {
    out += "truth racing_globals";
    for (const std::string& name : t.racing_globals) {
      out += " " + QuoteName(name);
    }
    out += "\n";
  }
  out += StrFormat("truth muvi_assumption_holds %s\n", Bool(t.muvi_assumption_holds));
  out += StrFormat("truth single_variable_pattern %s\n", Bool(t.single_variable_pattern));
  out += StrFormat("truth expect_ambiguity %s\n", Bool(t.expect_ambiguity));
  return out;
}

uint64_t ScenarioFingerprint(const BugScenario& scenario) {
  return Fnv1a64(ScenarioToAit(scenario));
}

}  // namespace aitia
