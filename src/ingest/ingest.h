// Trace ingestion frontend — one-call entry points.
//
// This is the data-driven alternative to hand-compiling scenarios against
// ProgramBuilder: a .ait trace arrives as text (a file, a request body, a
// fuzzer artifact), is parsed and assembled into a BugScenario, and feeds
// the same LIFS + Causality pipeline as the built-in corpus.

#ifndef SRC_INGEST_INGEST_H_
#define SRC_INGEST_INGEST_H_

#include <string>
#include <string_view>

#include "src/bugs/scenario.h"
#include "src/ingest/assemble.h"
#include "src/ingest/parser.h"
#include "src/ingest/serialize.h"
#include "src/util/status.h"

namespace aitia {

// Parses and assembles .ait text. `filename` prefixes diagnostics.
StatusOr<BugScenario> ScenarioFromAitText(std::string_view text, const std::string& filename);

// Reads, parses, and assembles a .ait file. Returns kNotFound when the file
// cannot be read.
StatusOr<BugScenario> ScenarioFromAitFile(const std::string& path);

}  // namespace aitia

#endif  // SRC_INGEST_INGEST_H_
