// Serializer: BugScenario -> .ait text.
//
// Emits any scenario — hand-built against ProgramBuilder or assembled from a
// trace — as a parseable .ait document. Labels are reconstructed from branch
// targets as "L<pc>"; a global whose initial value is another global's
// address round-trips as "&name". serialize(parse(serialize(s))) ==
// serialize(s) holds for every corpus scenario (golden-tested).

#ifndef SRC_INGEST_SERIALIZE_H_
#define SRC_INGEST_SERIALIZE_H_

#include <string>

#include "src/bugs/scenario.h"

namespace aitia {

std::string ScenarioToAit(const BugScenario& scenario);

}  // namespace aitia

#endif  // SRC_INGEST_SERIALIZE_H_
