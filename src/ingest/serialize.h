// Serializer: BugScenario -> .ait text.
//
// Emits any scenario — hand-built against ProgramBuilder or assembled from a
// trace — as a parseable .ait document. Labels are reconstructed from branch
// targets as "L<pc>"; a global whose initial value is another global's
// address round-trips as "&name". serialize(parse(serialize(s))) ==
// serialize(s) holds for every corpus scenario (golden-tested).

#ifndef SRC_INGEST_SERIALIZE_H_
#define SRC_INGEST_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "src/bugs/scenario.h"

namespace aitia {

std::string ScenarioToAit(const BugScenario& scenario);

// Stable identity of a scenario's *content*: the FNV-1a hash of its
// canonical .ait serialization. Two scenarios that assemble to the same
// kernel image, slice, and setup — whether they arrived as inline .ait text,
// a file, or a corpus id — hash identically, which is what makes the service
// layer's result cache idempotent across request forms.
uint64_t ScenarioFingerprint(const BugScenario& scenario);

}  // namespace aitia

#endif  // SRC_INGEST_SERIALIZE_H_
