// Parser for the .ait trace language.
//
// Grammar (line-oriented; `#` comments; blank lines ignored):
//
//   ait 1
//   scenario "CVE-2017-15649"
//   subsystem "Packet socket"            # optional
//   bug_kind "Assertion violation"       # optional
//   global po_running 1
//   global ptr &pointee                  # init = address of another global
//   program fanout_add
//     lea r1, po_running
//     load r2, r1 note "A2: if (!po->running)"
//     beqz r2, einval
//     label einval
//     exit
//   end
//   slice "bind()" packet_do_bind arg 0 kind syscall resource "packet_fd"
//   setup "open(dev)" dev_open
//   noise "ioctl(query) #1" query_loop
//   irq serial_rx_irq arg 0
//   truth failure assert
//   truth racing_globals po_running po_fanout
//   truth expected_chain_races 4
//
// Every diagnostic is a Status (kInvalidArgument) of the form
// "<file>:<line>:<col>: message" — the parser never aborts.

#ifndef SRC_INGEST_PARSER_H_
#define SRC_INGEST_PARSER_H_

#include <string>
#include <string_view>

#include "src/ingest/trace_doc.h"
#include "src/util/status.h"

namespace aitia {

// Parses .ait text. `filename` is used only to prefix diagnostics.
StatusOr<TraceDoc> ParseTraceText(std::string_view text, const std::string& filename);

}  // namespace aitia

#endif  // SRC_INGEST_PARSER_H_
