#include "src/ingest/parser.h"

#include <set>
#include <utility>

#include "src/util/strings.h"

namespace aitia {
namespace {

// Cursor over one line's tokens; knows where the line ends so "expected X"
// diagnostics can point one past the last token.
class LineCursor {
 public:
  LineCursor(const std::vector<Token>& toks, int line_no) : toks_(&toks), line_no_(line_no) {
    end_col_ = toks.empty() ? 1 : toks.back().pos.col + static_cast<int>(toks.back().text.size());
  }

  bool AtEnd() const { return i_ >= toks_->size(); }
  const Token* Peek() const { return AtEnd() ? nullptr : &(*toks_)[i_]; }
  const Token& Next() { return (*toks_)[i_++]; }
  SourcePos Here() const { return AtEnd() ? SourcePos{line_no_, end_col_} : (*toks_)[i_].pos; }

 private:
  const std::vector<Token>* toks_;
  size_t i_ = 0;
  int line_no_;
  int end_col_;
};

class Parser {
 public:
  Parser(std::string_view text, std::string filename)
      : text_(text), filename_(std::move(filename)) {
    doc_.filename = filename_;
  }

  StatusOr<TraceDoc> Run();

 private:
  Status Error(SourcePos pos, const std::string& message) const {
    return Status::InvalidArgument(StrFormat("%s:%d:%d: %s", filename_.c_str(), pos.line,
                                             pos.col, message.c_str()));
  }

  Status HandleLine(LineCursor& cur);
  Status HandleTopLevel(LineCursor& cur, const Token& head);
  Status HandleInstr(LineCursor& cur, const Token& head);
  Status HandleGlobal(LineCursor& cur);
  Status HandleThread(LineCursor& cur, AitSection section);
  Status HandleIrq(LineCursor& cur);
  Status HandleTruth(LineCursor& cur);
  Status CloseProgram();

  // --- token expectations ----------------------------------------------------
  Status ExpectIdent(LineCursor& cur, const char* what, Token* out);
  // An identifier or a quoted string (names may need quoting).
  Status ExpectName(LineCursor& cur, const char* what, Token* out);
  Status ExpectInt(LineCursor& cur, const char* what, Token* out);
  Status ExpectComma(LineCursor& cur);
  Status ExpectLineEnd(LineCursor& cur);
  Status ExpectReg(LineCursor& cur, uint8_t* out);

  std::string_view text_;
  std::string filename_;
  TraceDoc doc_;
  bool version_seen_ = false;
  bool scenario_seen_ = false;
  bool in_program_ = false;
};

Status Parser::ExpectIdent(LineCursor& cur, const char* what, Token* out) {
  if (cur.AtEnd() || cur.Peek()->kind != TokenKind::kIdent) {
    return Error(cur.Here(), StrFormat("expected %s", what));
  }
  *out = cur.Next();
  return OkStatus();
}

Status Parser::ExpectName(LineCursor& cur, const char* what, Token* out) {
  if (cur.AtEnd() || (cur.Peek()->kind != TokenKind::kIdent &&
                      cur.Peek()->kind != TokenKind::kString)) {
    return Error(cur.Here(), StrFormat("expected %s", what));
  }
  *out = cur.Next();
  return OkStatus();
}

Status Parser::ExpectInt(LineCursor& cur, const char* what, Token* out) {
  if (cur.AtEnd() || cur.Peek()->kind != TokenKind::kInt) {
    return Error(cur.Here(), StrFormat("expected %s", what));
  }
  *out = cur.Next();
  return OkStatus();
}

Status Parser::ExpectComma(LineCursor& cur) {
  if (cur.AtEnd() || cur.Peek()->kind != TokenKind::kComma) {
    return Error(cur.Here(), "expected ','");
  }
  cur.Next();
  return OkStatus();
}

Status Parser::ExpectLineEnd(LineCursor& cur) {
  if (!cur.AtEnd()) {
    return Error(cur.Here(), StrFormat("unexpected trailing '%s'", cur.Peek()->text.c_str()));
  }
  return OkStatus();
}

Status Parser::ExpectReg(LineCursor& cur, uint8_t* out) {
  if (cur.AtEnd() || cur.Peek()->kind != TokenKind::kIdent) {
    return Error(cur.Here(), "expected register (r0..r15)");
  }
  const Token& tok = cur.Next();
  Reg reg;
  if (!ParseRegToken(tok.text, &reg)) {
    return Error(tok.pos, StrFormat("bad register name '%s' (want r0..r15)", tok.text.c_str()));
  }
  *out = static_cast<uint8_t>(reg);
  return OkStatus();
}

Status Parser::HandleInstr(LineCursor& cur, const Token& head) {
  const MnemonicInfo* info = FindMnemonic(head.text);
  if (info == nullptr) {
    return Error(head.pos, StrFormat("unknown mnemonic '%s'", head.text.c_str()));
  }
  AitInstr instr;
  instr.info = info;
  instr.pos = head.pos;

  bool first = true;
  for (const char* sig = info->signature; *sig != '\0'; ++sig) {
    const char kind = *sig;
    const bool optional = kind == 'o' || kind == 'K';
    if (optional) {
      if (cur.AtEnd() || cur.Peek()->kind != TokenKind::kComma) {
        continue;  // optional operand omitted
      }
      cur.Next();  // the comma
    } else if (!first) {
      Status s = ExpectComma(cur);
      if (!s.ok()) {
        return s;
      }
    }
    first = false;
    Token tok;
    switch (kind) {
      case 'd': {
        Status s = ExpectReg(cur, &instr.rd);
        if (!s.ok()) return s;
        break;
      }
      case 's': {
        Status s = ExpectReg(cur, &instr.rs);
        if (!s.ok()) return s;
        break;
      }
      case 't': {
        Status s = ExpectReg(cur, &instr.rt);
        if (!s.ok()) return s;
        break;
      }
      case 'i': {
        Status s = ExpectInt(cur, "immediate", &tok);
        if (!s.ok()) return s;
        instr.imm = tok.value;
        break;
      }
      case 'I': {
        Status s = ExpectInt(cur, "immediate", &tok);
        if (!s.ok()) return s;
        instr.imm2 = tok.value;
        break;
      }
      case 'o': {
        Status s = ExpectInt(cur, "offset", &tok);
        if (!s.ok()) return s;
        instr.off = tok.value;
        break;
      }
      case 'K': {
        Status s = ExpectIdent(cur, "'leak'", &tok);
        if (!s.ok()) return s;
        if (tok.text != "leak") {
          return Error(tok.pos, StrFormat("expected 'leak', got '%s'", tok.text.c_str()));
        }
        instr.leak = true;
        break;
      }
      case 'G': {
        if (!cur.AtEnd() && cur.Peek()->kind == TokenKind::kInt) {
          tok = cur.Next();
          instr.sym_is_number = true;
          instr.imm = tok.value;
          instr.sym_pos = tok.pos;
        } else {
          Status s = ExpectName(cur, "global name (or address)", &tok);
          if (!s.ok()) return s;
          instr.sym = tok.text;
          instr.sym_pos = tok.pos;
        }
        break;
      }
      case 'L': {
        Status s = ExpectIdent(cur, "label name", &tok);
        if (!s.ok()) return s;
        instr.sym = tok.text;
        instr.sym_pos = tok.pos;
        break;
      }
      case 'P': {
        Status s = ExpectName(cur, "program name", &tok);
        if (!s.ok()) return s;
        instr.sym = tok.text;
        instr.sym_pos = tok.pos;
        break;
      }
      default:
        return Error(head.pos, "internal: bad signature");
    }
  }

  if (!cur.AtEnd() && cur.Peek()->kind == TokenKind::kIdent && cur.Peek()->text == "note") {
    const Token note_kw = cur.Next();
    if (cur.AtEnd() || cur.Peek()->kind != TokenKind::kString) {
      return Error(cur.Here(), "expected quoted string after 'note'");
    }
    (void)note_kw;
    instr.note = cur.Next().text;
  }
  Status s = ExpectLineEnd(cur);
  if (!s.ok()) {
    return s;
  }
  doc_.programs.back().items.push_back(std::move(instr));
  return OkStatus();
}

Status Parser::CloseProgram() {
  AitProgram& prog = doc_.programs.back();
  std::set<std::string> defined;
  for (const AitInstr& item : prog.items) {
    if (item.info->is_label && !defined.insert(item.sym).second) {
      return Error(item.sym_pos, StrFormat("duplicate label '%s' in program '%s'",
                                           item.sym.c_str(), prog.name.c_str()));
    }
  }
  for (const AitInstr& item : prog.items) {
    if (item.info->is_label) {
      continue;
    }
    const char* sig = item.info->signature;
    if (std::string_view(sig).find('L') != std::string_view::npos &&
        defined.count(item.sym) == 0) {
      return Error(item.sym_pos, StrFormat("undefined label '%s' in program '%s'",
                                           item.sym.c_str(), prog.name.c_str()));
    }
  }
  in_program_ = false;
  return OkStatus();
}

Status Parser::HandleGlobal(LineCursor& cur) {
  Token name;
  Status s = ExpectName(cur, "global name", &name);
  if (!s.ok()) {
    return s;
  }
  for (const AitGlobal& g : doc_.globals) {
    if (g.name == name.text) {
      return Error(name.pos, StrFormat("duplicate global '%s'", name.text.c_str()));
    }
  }
  AitGlobal global;
  global.name = name.text;
  global.pos = name.pos;
  if (!cur.AtEnd() && cur.Peek()->kind == TokenKind::kAmp) {
    cur.Next();
    Token ref;
    s = ExpectName(cur, "global name after '&'", &ref);
    if (!s.ok()) {
      return s;
    }
    global.init_ref = ref.text;
    global.init_pos = ref.pos;
  } else {
    Token init;
    s = ExpectInt(cur, "initial value (or &global)", &init);
    if (!s.ok()) {
      return s;
    }
    global.init = init.value;
    global.init_pos = init.pos;
  }
  doc_.globals.push_back(std::move(global));
  return ExpectLineEnd(cur);
}

Status Parser::HandleThread(LineCursor& cur, AitSection section) {
  AitThread thread;
  thread.section = section;
  Token name;
  Status s = ExpectName(cur, "thread name", &name);
  if (!s.ok()) {
    return s;
  }
  thread.name = name.text;
  thread.pos = name.pos;
  Token prog;
  s = ExpectName(cur, "program name", &prog);
  if (!s.ok()) {
    return s;
  }
  thread.program = prog.text;
  thread.program_pos = prog.pos;
  while (!cur.AtEnd()) {
    Token clause;
    s = ExpectIdent(cur, "clause ('arg', 'kind' or 'resource')", &clause);
    if (!s.ok()) {
      return s;
    }
    if (clause.text == "arg") {
      Token arg;
      s = ExpectInt(cur, "integer after 'arg'", &arg);
      if (!s.ok()) {
        return s;
      }
      thread.arg = arg.value;
    } else if (clause.text == "kind") {
      Token kind;
      s = ExpectIdent(cur, "thread kind (syscall|kworker|rcu|hardirq)", &kind);
      if (!s.ok()) {
        return s;
      }
      if (!ParseThreadKindToken(kind.text, &thread.kind)) {
        return Error(kind.pos, StrFormat("unknown thread kind '%s'", kind.text.c_str()));
      }
    } else if (clause.text == "resource") {
      Token res;
      s = ExpectName(cur, "resource tag after 'resource'", &res);
      if (!s.ok()) {
        return s;
      }
      thread.has_resource = true;
      thread.resource = res.text;
    } else {
      return Error(clause.pos, StrFormat("unknown clause '%s'", clause.text.c_str()));
    }
  }
  doc_.threads.push_back(std::move(thread));
  return OkStatus();
}

Status Parser::HandleIrq(LineCursor& cur) {
  AitIrq irq;
  Token handler;
  Status s = ExpectName(cur, "IRQ handler program name", &handler);
  if (!s.ok()) {
    return s;
  }
  irq.handler = handler.text;
  irq.handler_pos = handler.pos;
  irq.pos = handler.pos;
  if (!cur.AtEnd()) {
    Token kw;
    s = ExpectIdent(cur, "'arg'", &kw);
    if (!s.ok()) {
      return s;
    }
    if (kw.text != "arg") {
      return Error(kw.pos, StrFormat("unknown clause '%s'", kw.text.c_str()));
    }
    Token arg;
    s = ExpectInt(cur, "integer after 'arg'", &arg);
    if (!s.ok()) {
      return s;
    }
    irq.arg = arg.value;
  }
  doc_.irqs.push_back(std::move(irq));
  return ExpectLineEnd(cur);
}

Status Parser::HandleTruth(LineCursor& cur) {
  Token key;
  Status s = ExpectIdent(cur, "truth key", &key);
  if (!s.ok()) {
    return s;
  }
  GroundTruth& truth = doc_.truth;

  auto expect_bool = [&](bool* out) -> Status {
    Token tok;
    Status st = ExpectIdent(cur, "'true' or 'false'", &tok);
    if (!st.ok()) {
      return st;
    }
    if (tok.text == "true") {
      *out = true;
    } else if (tok.text == "false") {
      *out = false;
    } else {
      return Error(tok.pos, StrFormat("expected 'true' or 'false', got '%s'", tok.text.c_str()));
    }
    return OkStatus();
  };
  auto expect_count = [&](int* out) -> Status {
    Token tok;
    Status st = ExpectInt(cur, "integer", &tok);
    if (!st.ok()) {
      return st;
    }
    *out = static_cast<int>(tok.value);
    return OkStatus();
  };

  if (key.text == "failure") {
    Token tok;
    s = ExpectIdent(cur, "failure type token", &tok);
    if (!s.ok()) {
      return s;
    }
    if (!ParseFailureTypeToken(tok.text, &truth.failure_type)) {
      return Error(tok.pos, StrFormat("unknown failure type '%s'", tok.text.c_str()));
    }
  } else if (key.text == "multi_variable") {
    s = expect_bool(&truth.multi_variable);
  } else if (key.text == "loosely_correlated") {
    s = expect_bool(&truth.loosely_correlated);
  } else if (key.text == "muvi_assumption_holds") {
    s = expect_bool(&truth.muvi_assumption_holds);
  } else if (key.text == "single_variable_pattern") {
    s = expect_bool(&truth.single_variable_pattern);
  } else if (key.text == "expect_ambiguity") {
    s = expect_bool(&truth.expect_ambiguity);
  } else if (key.text == "paper_chain_races") {
    s = expect_count(&truth.paper_chain_races);
  } else if (key.text == "paper_interleavings") {
    s = expect_count(&truth.paper_interleavings);
  } else if (key.text == "expected_chain_races") {
    s = expect_count(&truth.expected_chain_races);
  } else if (key.text == "expected_interleavings") {
    s = expect_count(&truth.expected_interleavings);
  } else if (key.text == "racing_globals") {
    truth.racing_globals.clear();
    doc_.racing_global_pos.clear();
    while (!cur.AtEnd()) {
      Token tok;
      s = ExpectName(cur, "global name", &tok);
      if (!s.ok()) {
        return s;
      }
      truth.racing_globals.push_back(tok.text);
      doc_.racing_global_pos.push_back(tok.pos);
    }
    return OkStatus();
  } else {
    return Error(key.pos, StrFormat("unknown truth key '%s'", key.text.c_str()));
  }
  if (!s.ok()) {
    return s;
  }
  return ExpectLineEnd(cur);
}

Status Parser::HandleTopLevel(LineCursor& cur, const Token& head) {
  if (head.text == "scenario") {
    if (scenario_seen_) {
      return Error(head.pos, "duplicate 'scenario' declaration");
    }
    Token id;
    Status s = ExpectName(cur, "scenario id", &id);
    if (!s.ok()) {
      return s;
    }
    doc_.scenario_id = id.text;
    scenario_seen_ = true;
    return ExpectLineEnd(cur);
  }
  if (head.text == "subsystem" || head.text == "bug_kind") {
    Token value;
    Status s = ExpectName(cur, "quoted string", &value);
    if (!s.ok()) {
      return s;
    }
    (head.text == "subsystem" ? doc_.subsystem : doc_.bug_kind) = value.text;
    return ExpectLineEnd(cur);
  }
  if (head.text == "global") {
    return HandleGlobal(cur);
  }
  if (head.text == "program") {
    Token name;
    Status s = ExpectName(cur, "program name", &name);
    if (!s.ok()) {
      return s;
    }
    for (const AitProgram& p : doc_.programs) {
      if (p.name == name.text) {
        return Error(name.pos, StrFormat("duplicate program '%s'", name.text.c_str()));
      }
    }
    AitProgram prog;
    prog.name = name.text;
    prog.pos = name.pos;
    doc_.programs.push_back(std::move(prog));
    in_program_ = true;
    return ExpectLineEnd(cur);
  }
  if (head.text == "end") {
    return Error(head.pos, "'end' outside of a program block");
  }
  if (head.text == "slice") {
    return HandleThread(cur, AitSection::kSlice);
  }
  if (head.text == "setup") {
    return HandleThread(cur, AitSection::kSetup);
  }
  if (head.text == "noise") {
    return HandleThread(cur, AitSection::kNoise);
  }
  if (head.text == "irq") {
    return HandleIrq(cur);
  }
  if (head.text == "truth") {
    return HandleTruth(cur);
  }
  return Error(head.pos, StrFormat("unknown directive '%s'", head.text.c_str()));
}

Status Parser::HandleLine(LineCursor& cur) {
  Token head;
  Status s = ExpectIdent(cur, in_program_ ? "mnemonic or 'end'" : "directive", &head);
  if (!s.ok()) {
    return s;
  }
  if (!version_seen_) {
    if (head.text != "ait") {
      return Error(head.pos, "file must start with 'ait <version>'");
    }
    Token version;
    s = ExpectInt(cur, "format version", &version);
    if (!s.ok()) {
      return s;
    }
    if (version.value != kAitVersion) {
      return Error(version.pos, StrFormat("unsupported ait version %lld (this toolchain reads %d)",
                                          static_cast<long long>(version.value), kAitVersion));
    }
    version_seen_ = true;
    return ExpectLineEnd(cur);
  }
  if (in_program_) {
    if (head.text == "end") {
      s = ExpectLineEnd(cur);
      if (!s.ok()) {
        return s;
      }
      return CloseProgram();
    }
    return HandleInstr(cur, head);
  }
  return HandleTopLevel(cur, head);
}

StatusOr<TraceDoc> Parser::Run() {
  int line_no = 0;
  size_t start = 0;
  while (start <= text_.size()) {
    size_t nl = text_.find('\n', start);
    std::string_view line = text_.substr(
        start, nl == std::string_view::npos ? std::string_view::npos : nl - start);
    ++line_no;
    std::vector<Token> toks;
    Status s = TokenizeLine(line, line_no, &toks);
    if (!s.ok()) {
      return Status::InvalidArgument(filename_ + ":" + s.message());
    }
    if (!toks.empty()) {
      LineCursor cur(toks, line_no);
      s = HandleLine(cur);
      if (!s.ok()) {
        return s;
      }
    }
    if (nl == std::string_view::npos) {
      break;
    }
    start = nl + 1;
  }
  if (in_program_) {
    return Error({line_no, 1}, StrFormat("program '%s' not closed by 'end' before end of file",
                                         doc_.programs.back().name.c_str()));
  }
  if (!version_seen_) {
    return Error({1, 1}, "empty trace: missing 'ait <version>' header");
  }
  if (!scenario_seen_) {
    return Error({line_no, 1}, "missing 'scenario' declaration");
  }
  return std::move(doc_);
}

}  // namespace

StatusOr<TraceDoc> ParseTraceText(std::string_view text, const std::string& filename) {
  return Parser(text, filename).Run();
}

}  // namespace aitia
