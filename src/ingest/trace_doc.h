// Parsed representation of one .ait scenario file.
//
// The parser (parser.h) produces a TraceDoc after purely syntactic checks
// (mnemonics, operand shapes, label discipline, duplicate names); the
// assembler (assemble.h) lowers it into a KernelImage + BugScenario,
// resolving global and program names. Positions are kept on every element
// so semantic errors can still point at source lines.

#ifndef SRC_INGEST_TRACE_DOC_H_
#define SRC_INGEST_TRACE_DOC_H_

#include <string>
#include <vector>

#include "src/bugs/scenario.h"
#include "src/ingest/lexer.h"
#include "src/ingest/syntax.h"

namespace aitia {

// One instruction (or `label` pseudo-op) inside a `program` block.
struct AitInstr {
  const MnemonicInfo* info = nullptr;
  uint8_t rd = 0;            // 'd'
  uint8_t rs = 0;            // 's'
  uint8_t rt = 0;            // 't'
  Word imm = 0;              // 'i'
  Word imm2 = 0;             // 'I'
  Word off = 0;              // 'o'
  bool leak = false;         // 'K'
  std::string sym;           // 'G'/'L'/'P' operand (name)
  bool sym_is_number = false;  // 'G' given as a raw address (in imm)
  std::string note;
  SourcePos pos;      // mnemonic position
  SourcePos sym_pos;  // position of the name operand, for semantic errors
};

struct AitGlobal {
  std::string name;
  Word init = 0;
  std::string init_ref;  // non-empty: init is `&init_ref` (a global's address)
  SourcePos pos;
  SourcePos init_pos;
};

struct AitProgram {
  std::string name;
  std::vector<AitInstr> items;
  SourcePos pos;
};

enum class AitSection { kSlice, kSetup, kNoise };

struct AitThread {
  AitSection section = AitSection::kSlice;
  std::string name;     // display name, e.g. "bind()"
  std::string program;  // program to run
  Word arg = 0;
  ThreadKind kind = ThreadKind::kSyscall;
  bool has_resource = false;
  std::string resource;
  SourcePos pos;
  SourcePos program_pos;
};

struct AitIrq {
  std::string handler;
  Word arg = 0;
  SourcePos pos;
  SourcePos handler_pos;
};

struct TraceDoc {
  std::string filename;  // for diagnostics only
  std::string scenario_id;
  std::string subsystem;
  std::string bug_kind;
  std::vector<AitGlobal> globals;
  std::vector<AitProgram> programs;
  std::vector<AitThread> threads;
  std::vector<AitIrq> irqs;
  GroundTruth truth;
  // Positions of truth.racing_globals entries (parallel vector).
  std::vector<SourcePos> racing_global_pos;
};

}  // namespace aitia

#endif  // SRC_INGEST_TRACE_DOC_H_
