#include "src/ingest/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/util/strings.h"

namespace aitia {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '-';
}

Status LexError(int line, int col, const std::string& message) {
  return Status::InvalidArgument(StrFormat("%d:%d: %s", line, col, message.c_str()));
}

}  // namespace

Status TokenizeLine(std::string_view line, int line_no, std::vector<Token>* out) {
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    const int col = static_cast<int>(i) + 1;
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') {
      break;  // comment to end of line
    }
    if (c == ',') {
      out->push_back({TokenKind::kComma, ",", 0, {line_no, col}});
      ++i;
      continue;
    }
    if (c == '&') {
      out->push_back({TokenKind::kAmp, "&", 0, {line_no, col}});
      ++i;
      continue;
    }
    if (c == '"') {
      std::string text;
      ++i;
      while (true) {
        if (i >= line.size()) {
          return LexError(line_no, col, "unterminated string");
        }
        const char s = line[i];
        if (s == '"') {
          ++i;
          break;
        }
        if (s == '\\') {
          if (i + 1 >= line.size()) {
            return LexError(line_no, static_cast<int>(i) + 1, "dangling escape");
          }
          const char e = line[i + 1];
          switch (e) {
            case '"': text += '"'; break;
            case '\\': text += '\\'; break;
            case 'n': text += '\n'; break;
            case 'r': text += '\r'; break;
            case 't': text += '\t'; break;
            default:
              return LexError(line_no, static_cast<int>(i) + 1,
                              StrFormat("unknown escape '\\%c'", e));
          }
          i += 2;
          continue;
        }
        text += s;
        ++i;
      }
      out->push_back({TokenKind::kString, std::move(text), 0, {line_no, col}});
      continue;
    }
    const bool neg_int = c == '-' && i + 1 < line.size() &&
                         std::isdigit(static_cast<unsigned char>(line[i + 1]));
    if (std::isdigit(static_cast<unsigned char>(c)) || neg_int) {
      size_t start = i;
      if (neg_int) {
        ++i;
      }
      const bool hex = i + 1 < line.size() && line[i] == '0' &&
                       (line[i + 1] == 'x' || line[i + 1] == 'X');
      if (hex) {
        i += 2;
        while (i < line.size() && std::isxdigit(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
      } else {
        while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
      }
      if (i < line.size() && IsIdentChar(line[i]) && line[i] != '-') {
        return LexError(line_no, col, "malformed number");
      }
      const std::string text(line.substr(start, i - start));
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(text.c_str(), &end, 0);
      if (errno == ERANGE || end == nullptr || *end != '\0') {
        return LexError(line_no, col, "integer out of range");
      }
      out->push_back({TokenKind::kInt, text, static_cast<Word>(value), {line_no, col}});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < line.size() && IsIdentChar(line[i])) {
        ++i;
      }
      out->push_back(
          {TokenKind::kIdent, std::string(line.substr(start, i - start)), 0, {line_no, col}});
      continue;
    }
    return LexError(line_no, col, StrFormat("unexpected character '%c'", c));
  }
  return OkStatus();
}

}  // namespace aitia
