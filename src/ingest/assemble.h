// Semantic assembler: TraceDoc -> KernelImage + BugScenario.
//
// Resolves names the parser could only record: global references in `lea`
// and `&global` initializers, program names in `queue_work` / `call_rcu` /
// thread and IRQ lines, and the ground truth's racing globals. Forward
// references are allowed everywhere (addresses and ProgramIds are assigned
// in declaration order, matching KernelImage). All failures are Status
// diagnostics with source positions — assembly never aborts.

#ifndef SRC_INGEST_ASSEMBLE_H_
#define SRC_INGEST_ASSEMBLE_H_

#include "src/bugs/scenario.h"
#include "src/ingest/trace_doc.h"
#include "src/util/status.h"

namespace aitia {

StatusOr<BugScenario> AssembleScenario(const TraceDoc& doc);

}  // namespace aitia

#endif  // SRC_INGEST_ASSEMBLE_H_
