// The AITIA trace language (".ait") — shared syntax tables.
//
// One mnemonic per ProgramBuilder operation plus the `label` pseudo-op. The
// operand signature string is the single source of truth for the parser
// (which operands to expect), the assembler (which builder call to make),
// and the serializer (how to print an Instr back out):
//
//   d  destination register (Instr::rd)
//   s  source register      (Instr::rs)
//   t  second source        (Instr::rt)
//   i  immediate            (Instr::imm)
//   I  immediate            (Instr::imm2)
//   o  optional offset, default 0 (Instr::imm)
//   G  global-variable name (or a raw address), lands in Instr::imm
//   L  label name; resolved to a pc in Instr::imm
//   P  program name; resolved to a ProgramId in Instr::imm
//   K  optional `leak` keyword (Instr::imm2 != 0)
//
// Every instruction line may end with `note "..."`, the annotation that
// flows into race reports and causality chains.

#ifndef SRC_INGEST_SYNTAX_H_
#define SRC_INGEST_SYNTAX_H_

#include <string>
#include <string_view>

#include "src/sim/failure.h"
#include "src/sim/instr.h"
#include "src/sim/thread.h"
#include "src/sim/types.h"

namespace aitia {

// The .ait format version this toolchain reads and writes (`ait 1` header).
inline constexpr int kAitVersion = 1;

struct MnemonicInfo {
  const char* name;       // lower_snake mnemonic, e.g. "store_imm"
  const char* signature;  // operand pattern, see header comment
  Op op;                  // the Op it lowers to (kNop for `label`)
  bool is_label;          // the `label` pseudo-op
};

// All mnemonics, in serializer emission order. Terminated by a null name.
const MnemonicInfo* AllMnemonics();

// Lookup by mnemonic text; nullptr if unknown.
const MnemonicInfo* FindMnemonic(std::string_view name);

// Lookup for the serializer: the mnemonic that prints `instr`. kAssert
// disambiguates to bug_on/warn_on via imm2. Never null for valid ops.
const MnemonicInfo* MnemonicFor(const Instr& instr);

// --- enum token tables -------------------------------------------------------
// Stable kebab-case tokens for ground-truth failure types (distinct from the
// human-facing FailureTypeName strings, which contain spaces).
const char* FailureTypeToken(FailureType type);
bool ParseFailureTypeToken(std::string_view token, FailureType* out);

// Thread kinds reuse the simulator's names: syscall, kworker, rcu, hardirq.
bool ParseThreadKindToken(std::string_view token, ThreadKind* out);

// Registers: r0..r15.
bool ParseRegToken(std::string_view token, Reg* out);
std::string RegToken(uint8_t reg);

// --- quoting ----------------------------------------------------------------
// True if `name` can appear bare (identifier: [A-Za-z_][A-Za-z0-9_.-]*).
bool IsBareName(std::string_view name);

// Double-quotes `raw` with \" \\ \n \r \t escapes.
std::string QuoteString(const std::string& raw);

// Emits `name` bare when possible, quoted otherwise.
std::string QuoteName(const std::string& name);

}  // namespace aitia

#endif  // SRC_INGEST_SYNTAX_H_
