// Prometheus text exposition (format version 0.0.4) for a MetricsSnapshot.
//
// The HTTP scrape plane (src/svc/http.cc, `aitiad --http-port`) serves this
// from GET /metrics. The renderer is pure: it reads a snapshot and emits
// text, never touching the registry or the pipeline.
//
// Mapping rules:
//   - Dotted registry names are sanitized to the Prometheus charset
//     [a-zA-Z0-9_:] and prefixed "aitia_" ("svc.requests" →
//     "aitia_svc_requests"). Counters additionally get the conventional
//     "_total" suffix.
//   - Counters → `# TYPE ... counter`, gauges → gauge, histograms →
//     cumulative `_bucket{le="..."}` series (upper-bound edges from the
//     registry histogram, closed by `le="+Inf"`) plus `_sum` and `_count`.
//   - Values are rendered exactly for int64 instruments; the helpers below
//     also cover the full double range (NaN → "NaN", ±Inf → "+Inf"/"-Inf")
//     so the format layer is correct independent of today's instruments.
//
// The escaping/formatting helpers are exposed for the hostility test suite,
// which validates them against an independent line-format parser.

#ifndef SRC_OBS_PROMETHEUS_H_
#define SRC_OBS_PROMETHEUS_H_

#include <string>

#include "src/obs/metrics.h"

namespace aitia {
namespace obs {

// Sanitizes a dotted registry name into a valid Prometheus metric name:
// every character outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
// guarded with '_'. Does not add the "aitia_" prefix.
std::string PromSanitizeName(const std::string& name);

// Escapes a label value for the text format: backslash, double-quote and
// newline become \\, \" and \n.
std::string PromEscapeLabelValue(const std::string& value);

// Escapes HELP text: backslash and newline (quotes are legal in HELP).
std::string PromEscapeHelp(const std::string& text);

// Renders a sample value. Integers print without exponent or trailing
// zeros; non-finite values use the spec spellings "NaN", "+Inf", "-Inf".
std::string PromFormatValue(double value);

// Full exposition for a snapshot. Every metric gets # HELP and # TYPE
// lines; histograms expand to cumulative buckets. `prefix` is prepended to
// every sanitized name.
std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             const std::string& prefix = "aitia_");

}  // namespace obs
}  // namespace aitia

#endif  // SRC_OBS_PROMETHEUS_H_
