// Diagnosis progress event bus (DESIGN.md §15).
//
// The second observability layer: where metrics answer "how much" and spans
// answer "how long", events answer "what is happening *right now*" — a
// bounded stream of structured lifecycle notifications (queued → started →
// lifs → triage → flip-tested → verdict → done) that the daemon relays to
// streaming clients as NDJSON frames.
//
// Design constraints, in order:
//   1. Purity. Publishing must never perturb the pipeline. Nothing ever
//      reads an event back to make a decision, and when nobody is
//      subscribed the publish fast path is a single relaxed atomic load —
//      no allocation, no lock, no formatting. The flight-deck differential
//      test asserts corpus-wide bit-identical verdicts/chains/schedules
//      with streaming on vs. off.
//   2. Bounded. A subscription owns a fixed-capacity queue; a slow consumer
//      drops the *oldest* events (counted, surfaced via obs.events.dropped)
//      instead of back-pressuring the diagnosis.
//   3. Scoped. The daemon runs many diagnoses concurrently; each request
//      publishes under its own nonzero scope id and a subscription sees
//      only its scope. Scope 0 means "not publishing" and is never matched.
//
// Lock-light, not lock-free: the publish slow path (subscribers present)
// takes one short mutex to find matching subscriptions, and each
// subscription has its own queue mutex. Event volume is a handful per
// diagnosis phase, orders of magnitude below the metrics write rate, so a
// mutex here is invisible — the fast path is what must stay free.

#ifndef SRC_OBS_EVENTS_H_
#define SRC_OBS_EVENTS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace aitia {
namespace obs {

// Lifecycle phases of one diagnosis, in nominal order. Individual phases may
// repeat (one kFlipTested per race) or be absent (cache hits jump straight
// to kDone).
enum class DiagPhase {
  kQueued,      // accepted by the daemon admission queue
  kStarted,     // a worker picked the request up
  kLifs,        // LIFS search progress (per frontier pass / reproduction)
  kCkpt,        // checkpoint store activity (baseline deposit, eviction)
  kSupervision, // supervisor intervention (retry, deadline, watchdog)
  kTriage,      // static pre-filter summary
  kFlipTested,  // one dynamic flip test finished
  kVerdict,     // one race reached a settled verdict
  kDone,        // terminal: the report is about to be sent
};

// Stable kebab-case token for the wire protocol ("flip-tested").
const char* DiagPhaseName(DiagPhase phase);

struct DiagEvent {
  uint64_t scope = 0;  // publisher's scope id; 0 = unscoped (never delivered)
  uint64_t seq = 0;    // per-subscription delivery sequence, assigned on enqueue
  DiagPhase phase = DiagPhase::kQueued;
  std::string name;    // dotted source site, e.g. "ca.flip", "lifs.pass"
  std::string detail;  // human-readable label (race label, verdict, ...)
  // Small per-phase counters (index/total style). A vector of pairs, not a
  // map: insertion order is the display order and N is tiny.
  std::vector<std::pair<std::string, int64_t>> counters;
};

// One consumer's bounded view of the bus. Obtained from EventBus::Subscribe;
// detached from the bus by Close() (idempotent) or destruction.
class EventSubscription {
 public:
  ~EventSubscription();

  // Blocks up to timeout_ms for the next event. Returns nullopt when the
  // queue is empty and either the timeout elapsed or the subscription is
  // closed (check closed() to tell the two apart). Events buffered before
  // Close() are still delivered — close-then-drain is lossless.
  std::optional<DiagEvent> Next(int64_t timeout_ms);

  // Detaches from the bus: no further events are enqueued, pending Next()
  // calls wake. Safe to call from any thread, any number of times.
  void Close();

  bool closed() const;
  uint64_t scope() const { return scope_; }
  // Events discarded because the queue was full (oldest-first eviction).
  int64_t dropped() const;

 private:
  friend class EventBus;
  EventSubscription(uint64_t scope, size_t capacity);

  const uint64_t scope_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<DiagEvent> queue_;
  uint64_t next_seq_ = 0;
  int64_t dropped_ = 0;
  bool closed_ = false;
};

class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  // The process-wide bus the pipeline publishes to.
  static EventBus& Global();

  // Registers a consumer for events published under `scope` (must be
  // nonzero). The returned subscription stays valid after the bus moves on;
  // dropping the shared_ptr or calling Close() detaches it.
  std::shared_ptr<EventSubscription> Subscribe(uint64_t scope, size_t capacity = 256);

  // Hands the event to every live subscription whose scope matches. When no
  // subscriber exists (the CLI, a non-streamed daemon request) this is a
  // single relaxed load and a branch.
  void Publish(DiagEvent event);

  // True when at least one subscription is attached. Publishers use this to
  // skip even *building* the event (string formatting) on the fast path.
  bool active() const { return subscriber_count_.load(std::memory_order_relaxed) > 0; }

  // Allocates a fresh nonzero scope id (process-wide monotonic).
  static uint64_t NextScope();

 private:
  void Compact();  // drops closed subscriptions; callers hold mu_

  std::atomic<int64_t> subscriber_count_{0};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<EventSubscription>> subs_;
};

// Publisher-side helper: no-op unless the global bus has a subscriber and
// scope is nonzero. Call sites pass cheap arguments; the strings are only
// materialized on the slow path.
void PublishDiagEvent(uint64_t scope, DiagPhase phase, const char* name,
                      std::string detail = std::string(),
                      std::vector<std::pair<std::string, int64_t>> counters = {});

// JSON object for one event, used verbatim as the body of a daemon stream
// frame: {"phase": "...", "seq": N, "name": "...", "detail": "...",
// "counters": {...}}. Deterministic field order; `detail`/`counters` are
// omitted when empty.
std::string DiagEventToJson(const DiagEvent& event);

}  // namespace obs
}  // namespace aitia

#endif  // SRC_OBS_EVENTS_H_
