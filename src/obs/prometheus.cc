#include "src/obs/prometheus.h"

#include <cmath>
#include <cstdio>

#include "src/util/strings.h"

namespace aitia {
namespace obs {
namespace {

bool IsNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

void AppendHeader(std::string& out, const std::string& prom_name,
                  const std::string& source_name, const char* type) {
  out += "# HELP " + prom_name + " aitia metric " + PromEscapeHelp(source_name) + "\n";
  out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

std::string PromSanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const bool first = out.empty();
    if (IsNameChar(name[i], first)) {
      out += name[i];
    } else if (first && name[i] >= '0' && name[i] <= '9') {
      out += '_';
      out += name[i];
    } else {
      out += '_';
    }
  }
  if (out.empty()) {
    out = "_";
  }
  return out;
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromFormatValue(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  // Integral values (the common case: every live instrument is int64) print
  // exactly; everything else uses shortest-round-trip %.17g trimmed.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 9.0e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot, const std::string& prefix) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prefix + PromSanitizeName(name) + "_total";
    AppendHeader(out, prom, name, "counter");
    out += prom + " " + PromFormatValue(static_cast<double>(value)) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prefix + PromSanitizeName(name);
    AppendHeader(out, prom, name, "gauge");
    out += prom + " " + PromFormatValue(static_cast<double>(value)) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = prefix + PromSanitizeName(name);
    AppendHeader(out, prom, name, "histogram");
    // Registry buckets are per-bucket counts; the exposition is cumulative.
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += prom + "_bucket{le=\"" + PromFormatValue(static_cast<double>(h.bounds[i])) +
             "\"} " + PromFormatValue(static_cast<double>(cumulative)) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " +
           PromFormatValue(static_cast<double>(h.count)) + "\n";
    out += prom + "_sum " + PromFormatValue(static_cast<double>(h.sum)) + "\n";
    out += prom + "_count " + PromFormatValue(static_cast<double>(h.count)) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace aitia
