#include "src/obs/metrics.h"

#include <algorithm>
#include <utility>

#include "src/util/log.h"
#include "src/util/strings.h"

namespace aitia {
namespace obs {
namespace {

size_t ShardIndex() { return CurrentThreadTag() % kMetricShards; }

}  // namespace

void Counter::Add(int64_t delta) {
  shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  shards_ = std::vector<Shard>(kMetricShards);
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Record(int64_t value) {
  // First bound >= value wins (upper-bound buckets); past-the-end overflows.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  Shard& shard = shards_[ShardIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) {
    slot.reset(new Counter());
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge());
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new Histogram(std::move(bounds)));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds_;
    h.buckets.assign(h.bounds.size() + 1, 0);
    for (const Histogram::Shard& shard : histogram->shards_) {
      for (size_t i = 0; i < shard.buckets.size(); ++i) {
        h.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
      }
      h.count += shard.count.load(std::memory_order_relaxed);
      h.sum += shard.sum.load(std::memory_order_relaxed);
    }
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

int64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& since) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = since.counters.find(name);
    delta.counters[name] = value - (it == since.counters.end() ? 0 : it->second);
  }
  delta.gauges = gauges;  // levels, not rates
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot d = h;
    auto it = since.histograms.find(name);
    if (it != since.histograms.end() && it->second.bounds == h.bounds) {
      for (size_t i = 0; i < d.buckets.size(); ++i) {
        d.buckets[i] -= it->second.buckets[i];
      }
      d.count -= it->second.count;
      d.sum -= it->second.sum;
    }
    delta.histograms[name] = std::move(d);
  }
  return delta;
}

namespace {

std::string HistogramJson(const HistogramSnapshot& h) {
  std::string out = "{\"bounds\": [";
  for (size_t i = 0; i < h.bounds.size(); ++i) {
    out += StrFormat("%s%lld", i == 0 ? "" : ", ", static_cast<long long>(h.bounds[i]));
  }
  out += "], \"counts\": [";
  for (size_t i = 0; i < h.buckets.size(); ++i) {
    out += StrFormat("%s%lld", i == 0 ? "" : ", ", static_cast<long long>(h.buckets[i]));
  }
  out += StrFormat("], \"count\": %lld, \"sum\": %lld}", static_cast<long long>(h.count),
                   static_cast<long long>(h.sum));
  return out;
}

// Emits [lo, hi) of dotted-name/value pairs as one nested JSON object,
// grouping on the segment that starts at `offset`. Names are expected to use
// [a-z0-9_.] only, which keeps each dotted prefix group contiguous under
// lexicographic order; a name that is both a leaf and a prefix of deeper
// names keeps the deeper names dotted at this level (valid JSON either way).
void EmitNested(const std::vector<std::pair<std::string, std::string>>& items, size_t lo,
                size_t hi, size_t offset, std::string& out) {
  out += "{";
  bool first = true;
  size_t i = lo;
  while (i < hi) {
    const std::string& name = items[i].first;
    const size_t dot = name.find('.', offset);
    const std::string key =
        name.substr(offset, dot == std::string::npos ? std::string::npos : dot - offset);
    size_t j = i;
    while (j < hi) {
      const std::string& other = items[j].first;
      if (other.compare(offset, key.size(), key) != 0) {
        break;
      }
      const char next =
          other.size() > offset + key.size() ? other[offset + key.size()] : '\0';
      if (next != '\0' && next != '.') {
        break;
      }
      ++j;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    if (dot == std::string::npos && j == i + 1) {
      out += "\"" + JsonEscape(key) + "\": " + items[i].second;
    } else if (dot == std::string::npos) {
      // Leaf and group share the name: emit the leaf, then the deeper names
      // flattened ("key.rest") so no JSON key repeats.
      out += "\"" + JsonEscape(key) + "\": " + items[i].second;
      for (size_t k = i + 1; k < j; ++k) {
        out += ", \"" + JsonEscape(items[k].first.substr(offset)) + "\": " + items[k].second;
      }
    } else {
      out += "\"" + JsonEscape(key) + "\": ";
      EmitNested(items, i, j, offset + key.size() + 1, out);
    }
    i = j;
  }
  out += "}";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::vector<std::pair<std::string, std::string>> items;
  items.reserve(counters.size() + gauges.size() + histograms.size());
  for (const auto& [name, value] : counters) {
    items.emplace_back(name, StrFormat("%lld", static_cast<long long>(value)));
  }
  for (const auto& [name, value] : gauges) {
    items.emplace_back(name, StrFormat("%lld", static_cast<long long>(value)));
  }
  for (const auto& [name, h] : histograms) {
    items.emplace_back(name, HistogramJson(h));
  }
  std::sort(items.begin(), items.end());
  std::string out;
  EmitNested(items, 0, items.size(), 0, out);
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      out += StrFormat("  %-40s %lld\n", name.c_str(), static_cast<long long>(value));
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      out += StrFormat("  %-40s %lld\n", name.c_str(), static_cast<long long>(value));
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const auto& [name, h] : histograms) {
      out += StrFormat("  %-40s count=%lld sum=%lld", name.c_str(),
                       static_cast<long long>(h.count), static_cast<long long>(h.sum));
      for (size_t i = 0; i < h.buckets.size(); ++i) {
        if (i < h.bounds.size()) {
          out += StrFormat(" le%lld:%lld", static_cast<long long>(h.bounds[i]),
                           static_cast<long long>(h.buckets[i]));
        } else {
          out += StrFormat(" inf:%lld", static_cast<long long>(h.buckets[i]));
        }
      }
      out += "\n";
    }
  }
  if (out.empty()) {
    out = "(no metrics recorded)\n";
  }
  return out;
}

}  // namespace obs
}  // namespace aitia
