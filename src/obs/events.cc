#include "src/obs/events.h"

#include <algorithm>
#include <chrono>

#include "src/util/strings.h"

namespace aitia {
namespace obs {

const char* DiagPhaseName(DiagPhase phase) {
  switch (phase) {
    case DiagPhase::kQueued:
      return "queued";
    case DiagPhase::kStarted:
      return "started";
    case DiagPhase::kLifs:
      return "lifs";
    case DiagPhase::kCkpt:
      return "ckpt";
    case DiagPhase::kSupervision:
      return "supervision";
    case DiagPhase::kTriage:
      return "triage";
    case DiagPhase::kFlipTested:
      return "flip-tested";
    case DiagPhase::kVerdict:
      return "verdict";
    case DiagPhase::kDone:
      return "done";
  }
  return "unknown";
}

EventSubscription::EventSubscription(uint64_t scope, size_t capacity)
    : scope_(scope), capacity_(capacity == 0 ? 1 : capacity) {}

EventSubscription::~EventSubscription() { Close(); }

std::optional<DiagEvent> EventSubscription::Next(int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && !closed_ && timeout_ms > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                 [this] { return !queue_.empty() || closed_; });
  }
  if (queue_.empty()) {
    return std::nullopt;
  }
  DiagEvent event = std::move(queue_.front());
  queue_.pop_front();
  return event;
}

void EventSubscription::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return;
    }
    closed_ = true;
  }
  cv_.notify_all();
}

bool EventSubscription::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

int64_t EventSubscription::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

EventBus& EventBus::Global() {
  static EventBus* const bus = new EventBus();
  return *bus;
}

uint64_t EventBus::NextScope() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<EventSubscription> EventBus::Subscribe(uint64_t scope, size_t capacity) {
  auto sub = std::shared_ptr<EventSubscription>(new EventSubscription(scope, capacity));
  std::lock_guard<std::mutex> lock(mu_);
  Compact();
  subs_.push_back(sub);
  subscriber_count_.store(static_cast<int64_t>(subs_.size()), std::memory_order_relaxed);
  return sub;
}

void EventBus::Compact() {
  subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                             [](const std::shared_ptr<EventSubscription>& sub) {
                               return sub == nullptr || sub->closed();
                             }),
              subs_.end());
  subscriber_count_.store(static_cast<int64_t>(subs_.size()), std::memory_order_relaxed);
}

void EventBus::Publish(DiagEvent event) {
  if (!active() || event.scope == 0) {
    return;
  }
  // Collect matching subscriptions under the bus lock, deliver outside it so
  // a consumer holding its queue mutex in Next() never serializes the bus.
  std::vector<std::shared_ptr<EventSubscription>> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool saw_closed = false;
    for (const std::shared_ptr<EventSubscription>& sub : subs_) {
      if (sub->closed()) {
        saw_closed = true;
        continue;
      }
      if (sub->scope_ == event.scope) {
        targets.push_back(sub);
      }
    }
    if (saw_closed) {
      Compact();
    }
  }
  for (const std::shared_ptr<EventSubscription>& sub : targets) {
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(sub->mu_);
      if (sub->closed_) {
        continue;
      }
      if (sub->queue_.size() >= sub->capacity_) {
        // Oldest-first eviction: streaming is a progress feed, so the newest
        // event is the valuable one when the consumer lags.
        sub->queue_.pop_front();
        ++sub->dropped_;
      }
      DiagEvent copy = event;
      copy.seq = sub->next_seq_++;
      sub->queue_.push_back(std::move(copy));
      notify = true;
    }
    if (notify) {
      sub->cv_.notify_one();
    }
  }
}

void PublishDiagEvent(uint64_t scope, DiagPhase phase, const char* name, std::string detail,
                      std::vector<std::pair<std::string, int64_t>> counters) {
  if (scope == 0 || !EventBus::Global().active()) {
    return;
  }
  DiagEvent event;
  event.scope = scope;
  event.phase = phase;
  event.name = name;
  event.detail = std::move(detail);
  event.counters = std::move(counters);
  EventBus::Global().Publish(std::move(event));
}

std::string DiagEventToJson(const DiagEvent& event) {
  std::string out = StrFormat("{\"phase\": \"%s\", \"seq\": %llu, \"name\": \"%s\"",
                              DiagPhaseName(event.phase),
                              static_cast<unsigned long long>(event.seq),
                              JsonEscape(event.name).c_str());
  if (!event.detail.empty()) {
    out += ", \"detail\": \"" + JsonEscape(event.detail) + "\"";
  }
  if (!event.counters.empty()) {
    out += ", \"counters\": {";
    for (size_t i = 0; i < event.counters.size(); ++i) {
      out += StrFormat("%s\"%s\": %lld", i == 0 ? "" : ", ",
                       JsonEscape(event.counters[i].first).c_str(),
                       static_cast<long long>(event.counters[i].second));
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace aitia
