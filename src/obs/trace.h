// Structured span tracer (DESIGN.md §10).
//
// Ring-buffered trace events with thread tags, categories, and key/value
// args. Disabled by default: an inactive Span is a single relaxed atomic
// load and nothing else, so instrumentation can stay in the LIFS hot path
// permanently. When enabled (CLI --trace, or Tracer::Start in tests) events
// land in per-shard bounded rings — memory is capped at Start() time, and
// events past the cap are counted as dropped rather than grown or blocked
// on.
//
// Determinism rule: tracing is pure read-side. Spans observe the pipeline
// and never feed back into it, so a traced diagnosis is bit-identical to an
// untraced one (asserted corpus-wide by tests/obs_determinism_test.cc).
//
// The export format is the Chrome trace-event JSON (the "JSON Object
// Format"): load the file in about:tracing or https://ui.perfetto.dev.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

namespace aitia {
namespace obs {

struct TraceArg {
  std::string key;
  std::string value;  // pre-rendered; quoted in JSON iff `quoted`
  bool quoted = true;
};

struct TraceEvent {
  char ph = 'X';     // 'X' complete span, 'i' instant event
  std::string cat;   // pipeline phase: "ingest", "lifs", "causality", "hv", "pipeline"
  std::string name;
  int64_t ts_us = 0;   // microseconds since Tracer::Start
  int64_t dur_us = 0;  // 'X' only
  uint32_t tid = 0;    // CurrentThreadTag()
  std::vector<TraceArg> args;
};

struct TraceDump {
  std::vector<TraceEvent> events;  // merged across shards, sorted by ts_us
  int64_t dropped = 0;             // events discarded once the rings filled
  size_t capacity = 0;             // total event capacity at Start()
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;
  static constexpr size_t kShards = 16;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer all Spans report to.
  static Tracer& Global();

  // Clears any previous events, sets the time epoch, bounds total memory to
  // ~`capacity` events, and enables recording.
  void Start(size_t capacity = kDefaultCapacity);

  // Disables recording. Already-buffered events stay until the next Start.
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since the Start epoch.
  int64_t NowUs() const;

  // Appends one event to the caller's shard (drop-counted once full).
  // No-op when disabled.
  void Record(TraceEvent&& event);

  // Merged snapshot; safe to call while recording (per-shard locks).
  TraceDump Snapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    int64_t dropped = 0;
    size_t capacity = 0;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> epoch_ns_{0};  // steady_clock nanos at Start
  Shard shards_[kShards];
};

// Serializes a dump to Chrome trace-event JSON ("JSON Object Format"):
// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}.
std::string ToChromeTraceJson(const TraceDump& dump);

// RAII span: records one 'X' (complete) event covering its lifetime, or one
// 'i' (instant) event at destruction. Near-zero cost when tracing is off.
//
//   obs::Span span("lifs", "lifs.run");
//   span.Arg("k", interleavings).Arg("matched", matched);
//
//   obs::Span("lifs", "lifs.prune", 'i').Arg("reason", "duplicate-schedule");
class Span {
 public:
  Span(const char* cat, const char* name, char ph = 'X');
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& Arg(const char* key, const char* value);
  Span& Arg(const char* key, const std::string& value);
  Span& Arg(const char* key, bool value);
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  Span& Arg(const char* key, T value) {
    return IntArg(key, static_cast<int64_t>(value));
  }

 private:
  Span& IntArg(const char* key, int64_t value);

  bool active_;
  int64_t start_us_ = 0;
  TraceEvent event_;
};

}  // namespace obs
}  // namespace aitia

#endif  // SRC_OBS_TRACE_H_
