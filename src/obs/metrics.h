// Process-wide metrics registry (DESIGN.md §10).
//
// Named counters, gauges, and fixed-bucket histograms for the diagnosis
// pipeline. The write path is lock-free: every instrument is split into
// cache-line-padded shards indexed by a per-thread tag, and writers touch
// only their own shard with relaxed atomics — parallel LIFS frontier workers
// never contend on a metrics mutex. Shards are summed on Snapshot(), which
// may run concurrently with writers (each field is individually atomic, so a
// snapshot is "torn" at worst across *different* metrics, never undefined).
//
// Determinism rule: metrics are pure read-side accounting. Nothing in the
// pipeline reads a metric back to make a decision, so enabling or inspecting
// them cannot perturb the winner schedule, race set, or explored order
// (asserted corpus-wide by tests/obs_determinism_test.cc).
//
// Instruments live for the process lifetime: Get* returns a stable pointer
// that call sites cache in a function-local static, paying the registry
// mutex once per call site instead of once per increment.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aitia {
namespace obs {

// Shard fan-out. Threads hash onto shards by their small thread tag; 16 is
// plenty for the pool sizes the pipeline uses and keeps snapshots cheap.
inline constexpr size_t kMetricShards = 16;

class Counter {
 public:
  void Add(int64_t delta);
  void Increment() { Add(1); }
  int64_t Value() const;

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  // Raises the gauge to `value` if it reads below it (lock-free CAS loop).
  // High-water marks — e.g. the service queue-depth peak that the chaos
  // driver asserts stays within the configured bound — are gauges that only
  // ever move up, so concurrent writers need max, not last-write-wins.
  void SetMax(int64_t value) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < value &&
           !value_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram with Prometheus-style upper-bound edges: bucket i
// counts values v with bounds[i-1] < v <= bounds[i]; one extra overflow
// bucket counts v > bounds.back().
class Histogram {
 public:
  void Record(int64_t value);
  const std::vector<int64_t>& bounds() const { return bounds_; }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<int64_t> bounds);

  struct alignas(64) Shard {
    std::vector<std::atomic<int64_t>> buckets;
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
  };
  std::vector<int64_t> bounds_;  // ascending upper bounds
  std::vector<Shard> shards_;
};

struct HistogramSnapshot {
  std::vector<int64_t> bounds;
  std::vector<int64_t> buckets;  // bounds.size() + 1 (overflow last)
  int64_t count = 0;
  int64_t sum = 0;
};

// Point-in-time merged view of a registry. Snapshots are plain values:
// diffable (Delta) so a per-diagnosis report can be cut out of the
// process-wide registry, and serializable (ToJson / ToText).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Counter value by name; 0 when absent.
  int64_t counter(const std::string& name) const;
  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  // Counters and histograms become this-minus-since; gauges keep the current
  // value (a level, not a rate). Metrics absent from `since` pass through.
  MetricsSnapshot Delta(const MetricsSnapshot& since) const;

  // Nested JSON object: dotted names become nested objects, so
  // "lifs.schedules_executed" serializes as {"lifs": {"schedules_executed": N}}.
  // Histograms serialize as {"bounds": [...], "counts": [...], "count": N, "sum": S}.
  std::string ToJson() const;

  // Human-readable summary (the CLI's --metrics output).
  std::string ToText() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry the pipeline reports into.
  static MetricsRegistry& Global();

  // Returns the named instrument, creating it on first use. Pointers are
  // stable for the registry's lifetime. A histogram re-requested with
  // different bounds keeps the bounds of its first registration.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<int64_t> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace aitia

#endif  // SRC_OBS_METRICS_H_
