#include "src/obs/trace.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace aitia {
namespace obs {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

void Tracer::Start(size_t capacity) {
  enabled_.store(false, std::memory_order_relaxed);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  const size_t per_shard = std::max<size_t>(1, capacity / kShards);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
    shard.events.reserve(std::min<size_t>(per_shard, 4096));
    shard.dropped = 0;
    shard.capacity = per_shard;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

int64_t Tracer::NowUs() const {
  return (SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed)) / 1000;
}

void Tracer::Record(TraceEvent&& event) {
  if (!enabled()) {
    return;
  }
  Shard& shard = shards_[CurrentThreadTag() % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.events.size() >= shard.capacity) {
    ++shard.dropped;  // bounded memory: first-come-first-kept
    // Mirrored into the registry so ring saturation shows up in the report
    // "metrics" section and on the scrape plane, not only in --trace output.
    static obs::Counter* const dropped = MetricsRegistry::Global().GetCounter("trace.dropped");
    dropped->Increment();
    return;
  }
  shard.events.push_back(std::move(event));
}

TraceDump Tracer::Snapshot() const {
  TraceDump dump;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    dump.events.insert(dump.events.end(), shard.events.begin(), shard.events.end());
    dump.dropped += shard.dropped;
    dump.capacity += shard.capacity;
  }
  std::stable_sort(dump.events.begin(), dump.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) {
                       return a.ts_us < b.ts_us;
                     }
                     return a.tid < b.tid;
                   });
  return dump;
}

std::string ToChromeTraceJson(const TraceDump& dump) {
  std::string json = "{\"traceEvents\": [";
  for (size_t i = 0; i < dump.events.size(); ++i) {
    const TraceEvent& e = dump.events[i];
    if (i != 0) {
      json += ",";
    }
    json += StrFormat("\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
                      "\"ts\": %lld, ",
                      JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(), e.ph,
                      static_cast<long long>(e.ts_us));
    if (e.ph == 'X') {
      json += StrFormat("\"dur\": %lld, ", static_cast<long long>(e.dur_us));
    }
    if (e.ph == 'i') {
      json += "\"s\": \"t\", ";  // thread-scoped instant
    }
    json += StrFormat("\"pid\": 1, \"tid\": %u", e.tid);
    if (!e.args.empty()) {
      json += ", \"args\": {";
      for (size_t a = 0; a < e.args.size(); ++a) {
        const TraceArg& arg = e.args[a];
        if (a != 0) {
          json += ", ";
        }
        json += "\"" + JsonEscape(arg.key) + "\": ";
        if (arg.quoted) {
          json += "\"" + JsonEscape(arg.value) + "\"";
        } else {
          json += arg.value;
        }
      }
      json += "}";
    }
    json += "}";
  }
  json += StrFormat("\n], \"displayTimeUnit\": \"ms\", "
                    "\"otherData\": {\"dropped_events\": %lld, \"capacity\": %zu}}",
                    static_cast<long long>(dump.dropped), dump.capacity);
  return json;
}

Span::Span(const char* cat, const char* name, char ph) : active_(Tracer::Global().enabled()) {
  if (!active_) {
    return;
  }
  event_.ph = ph;
  event_.cat = cat;
  event_.name = name;
  event_.tid = CurrentThreadTag();
  start_us_ = Tracer::Global().NowUs();
}

Span::~Span() {
  if (!active_) {
    return;
  }
  Tracer& tracer = Tracer::Global();
  event_.ts_us = start_us_;
  if (event_.ph == 'X') {
    event_.dur_us = tracer.NowUs() - start_us_;
  }
  tracer.Record(std::move(event_));
}

Span& Span::Arg(const char* key, const char* value) {
  if (active_) {
    event_.args.push_back({key, value, /*quoted=*/true});
  }
  return *this;
}

Span& Span::Arg(const char* key, const std::string& value) {
  if (active_) {
    event_.args.push_back({key, value, /*quoted=*/true});
  }
  return *this;
}

Span& Span::Arg(const char* key, bool value) {
  if (active_) {
    event_.args.push_back({key, value ? "true" : "false", /*quoted=*/false});
  }
  return *this;
}

Span& Span::IntArg(const char* key, int64_t value) {
  if (active_) {
    event_.args.push_back(
        {key, StrFormat("%lld", static_cast<long long>(value)), /*quoted=*/false});
  }
  return *this;
}

}  // namespace obs
}  // namespace aitia
